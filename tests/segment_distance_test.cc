// Tests for the TRACLUS line-segment distance function (§2.3, Definitions 1-3)
// and the naive endpoint baselines (Appendix A).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/span.h"
#include "common/thread_pool.h"
#include "distance/batch_kernels.h"
#include "distance/endpoint_distance.h"
#include "distance/segment_distance.h"
#include "traj/segment_store.h"

namespace traclus::distance {
namespace {

using geom::Point;
using geom::Segment;

// Worked example used throughout: Li horizontal (0,0)→(10,0), Lj = (2,2)→(5,4).
//   l⊥1 = 2, l⊥2 = 4            ⇒ d⊥ = (4 + 16) / (2 + 4) = 10/3
//   ps = (2,0) ⇒ l∥1 = 2; pe = (5,0) ⇒ l∥2 = 5 ⇒ d∥ = 2
//   sinθ = 2/√13, ‖Lj‖ = √13    ⇒ dθ = 2
class WorkedExampleTest : public ::testing::Test {
 protected:
  const Segment li_{Point(0, 0), Point(10, 0)};
  const Segment lj_{Point(2, 2), Point(5, 4)};
  const SegmentDistance dist_{};
};

TEST_F(WorkedExampleTest, PerpendicularIsLehmerMeanOfOrder2) {
  EXPECT_NEAR(dist_.Perpendicular(li_, lj_), 10.0 / 3.0, 1e-12);
}

TEST_F(WorkedExampleTest, ParallelIsMinOfProjectionGaps) {
  EXPECT_NEAR(dist_.Parallel(li_, lj_), 2.0, 1e-12);
}

TEST_F(WorkedExampleTest, AngleIsShorterLengthTimesSine) {
  EXPECT_NEAR(dist_.Angle(li_, lj_), 2.0, 1e-12);
}

TEST_F(WorkedExampleTest, TotalIsWeightedSum) {
  EXPECT_NEAR(dist_(li_, lj_), 10.0 / 3.0 + 2.0 + 2.0, 1e-12);
}

TEST_F(WorkedExampleTest, ComponentsBundleMatchesIndividualCalls) {
  const DistanceComponents c = dist_.Components(li_, lj_);
  EXPECT_DOUBLE_EQ(c.perpendicular, dist_.Perpendicular(li_, lj_));
  EXPECT_DOUBLE_EQ(c.parallel, dist_.Parallel(li_, lj_));
  EXPECT_DOUBLE_EQ(c.angle, dist_.Angle(li_, lj_));
}

TEST_F(WorkedExampleTest, CustomWeightsScaleComponents) {
  SegmentDistanceConfig cfg;
  cfg.w_perpendicular = 2.0;
  cfg.w_parallel = 0.5;
  cfg.w_angle = 3.0;
  const SegmentDistance weighted(cfg);
  EXPECT_NEAR(weighted(li_, lj_), 2.0 * 10.0 / 3.0 + 0.5 * 2.0 + 3.0 * 2.0,
              1e-12);
}

TEST(SegmentDistanceTest, IdenticalSegmentsHaveZeroDistance) {
  const Segment s(Point(3, 4), Point(8, 1));
  const SegmentDistance dist;
  EXPECT_DOUBLE_EQ(dist(s, s), 0.0);
}

TEST(SegmentDistanceTest, EnclosedParallelSegmentUsesNearestEndpointGap) {
  // Lj strictly inside Li's span, offset by 1 vertically.
  const Segment li(Point(0, 0), Point(100, 0));
  const Segment lj(Point(40, 1), Point(60, 1));
  const SegmentDistance dist;
  EXPECT_NEAR(dist.Perpendicular(li, lj), 1.0, 1e-12);
  // ps=(40,0): min(40,60)=40; pe=(60,0): min(60,40)=40 ⇒ d∥ = 40.
  EXPECT_NEAR(dist.Parallel(li, lj), 40.0, 1e-12);
  EXPECT_NEAR(dist.Angle(li, lj), 0.0, 1e-12);
}

TEST(SegmentDistanceTest, AdjacentSegmentsOfATrajectoryHaveZeroParallel) {
  // §4.1.1: "the parallel distance between two adjacent line segments in a
  // trajectory is always zero" — they share an endpoint, so one projection gap
  // is zero.
  const Segment a(Point(0, 0), Point(10, 0));
  const Segment b(Point(10, 0), Point(15, 7));
  const SegmentDistance dist;
  EXPECT_DOUBLE_EQ(dist.Parallel(a, b), 0.0);
}

TEST(SegmentDistanceTest, DirectedAngleUsesFullLengthBeyond90Degrees) {
  const Segment li(Point(0, 0), Point(10, 0));
  const Segment opposite(Point(5, 1), Point(1, 1));  // θ = 180°.
  const SegmentDistance dist;
  EXPECT_DOUBLE_EQ(dist.Angle(li, opposite), 4.0);  // ‖Lj‖.

  const Segment backward_diag(Point(5, 1), Point(2, 4));  // θ = 135°.
  EXPECT_DOUBLE_EQ(dist.Angle(li, backward_diag), backward_diag.Length());
}

TEST(SegmentDistanceTest, UndirectedAngleFoldsBeyond90Degrees) {
  SegmentDistanceConfig cfg;
  cfg.directed = false;
  const SegmentDistance dist(cfg);
  const Segment li(Point(0, 0), Point(10, 0));
  const Segment opposite(Point(5, 1), Point(1, 1));  // θ = 180° folds to 0°.
  EXPECT_NEAR(dist.Angle(li, opposite), 0.0, 1e-12);

  const Segment backward_diag(Point(5, 1), Point(2, 4));  // 135° folds to 45°.
  EXPECT_NEAR(dist.Angle(li, backward_diag),
              backward_diag.Length() * std::sin(M_PI / 4), 1e-12);
}

TEST(SegmentDistanceTest, PointLikeSegmentHasZeroAngle) {
  // §4.1.3: a very short segment has no directional strength; the limit case
  // (zero length) must contribute zero angle distance, not NaN.
  const Segment li(Point(0, 0), Point(10, 0));
  const Segment pt(Point(5, 3), Point(5, 3));
  const SegmentDistance dist;
  EXPECT_DOUBLE_EQ(dist.Angle(li, pt), 0.0);
  EXPECT_TRUE(std::isfinite(dist(li, pt)));
}

TEST(SegmentDistanceTest, ShortSegmentShrinksAngleDistanceFig11) {
  // Fig. 11: with L1 and L3 at a fixed mutual angle, a very short connector L2
  // yields small dθ to both, while a long L2 yields large dθ — the
  // over-clustering hazard the partition-suppression heuristic addresses.
  const Segment l1(Point(0, 0), Point(10, 0));
  const Segment short_l2(Point(11, 0.5), Point(11.5, 1.0));
  const Segment long_l2(Point(11, 0.5), Point(16, 5.5));
  const SegmentDistance dist;
  EXPECT_LT(dist.Angle(l1, short_l2), 0.51);
  EXPECT_GT(dist.Angle(l1, long_l2), 4.9);
}

// --- Symmetry (Lemma 2) as a parameterized property over random pairs. ---

class SymmetryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SymmetryPropertyTest, DistanceIsSymmetric) {
  common::Rng rng(GetParam());
  const SegmentDistance dist;
  SegmentDistanceConfig undirected_cfg;
  undirected_cfg.directed = false;
  const SegmentDistance undirected(undirected_cfg);
  for (int i = 0; i < 100; ++i) {
    Segment a(Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50)),
              Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50)),
              /*id=*/2 * i, /*trajectory_id=*/0);
    Segment b(Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50)),
              Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50)),
              /*id=*/2 * i + 1, /*trajectory_id=*/1);
    EXPECT_DOUBLE_EQ(dist(a, b), dist(b, a)) << a.ToString() << " / "
                                             << b.ToString();
    EXPECT_DOUBLE_EQ(undirected(a, b), undirected(b, a));
  }
}

TEST_P(SymmetryPropertyTest, EqualLengthTieBreakIsStillSymmetric) {
  // Equal-length pairs exercise the id / lexicographic tie-breaks.
  common::Rng rng(GetParam() + 1000);
  const SegmentDistance dist;
  for (int i = 0; i < 100; ++i) {
    const Point s1(rng.Uniform(-10, 10), rng.Uniform(-10, 10));
    const Point s2(rng.Uniform(-10, 10), rng.Uniform(-10, 10));
    const double angle1 = rng.Uniform(0, 2 * M_PI);
    const double angle2 = rng.Uniform(0, 2 * M_PI);
    const double len = rng.Uniform(0.5, 10.0);
    Segment a(s1, s1 + Point(std::cos(angle1), std::sin(angle1)) * len);
    Segment b(s2, s2 + Point(std::cos(angle2), std::sin(angle2)) * len);
    EXPECT_DOUBLE_EQ(dist(a, b), dist(b, a));
  }
}

TEST_P(SymmetryPropertyTest, ComponentsAreNonNegativeAndFinite) {
  common::Rng rng(GetParam() + 2000);
  const SegmentDistance dist;
  for (int i = 0; i < 100; ++i) {
    Segment a(Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50)),
              Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50)));
    Segment b(Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50)),
              Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50)));
    const DistanceComponents c = dist.Components(a, b);
    EXPECT_GE(c.perpendicular, 0.0);
    EXPECT_GE(c.parallel, 0.0);
    EXPECT_GE(c.angle, 0.0);
    EXPECT_TRUE(std::isfinite(c.perpendicular));
    EXPECT_TRUE(std::isfinite(c.parallel));
    EXPECT_TRUE(std::isfinite(c.angle));
  }
}

TEST_P(SymmetryPropertyTest, LowerBoundHoldsForRandomWeights) {
  // DESIGN.md §4.1: dist ≥ min(w⊥/2, w∥) · EuclideanSegmentDistance — the
  // inequality that makes exact grid-index pruning possible.
  common::Rng rng(GetParam() + 3000);
  for (int i = 0; i < 100; ++i) {
    SegmentDistanceConfig cfg;
    cfg.w_perpendicular = rng.Uniform(0.1, 3.0);
    cfg.w_parallel = rng.Uniform(0.1, 3.0);
    cfg.w_angle = rng.Uniform(0.0, 3.0);
    cfg.directed = rng.Bernoulli(0.5);
    const SegmentDistance dist(cfg);
    Segment a(Point(rng.Uniform(-30, 30), rng.Uniform(-30, 30)),
              Point(rng.Uniform(-30, 30), rng.Uniform(-30, 30)));
    Segment b(Point(rng.Uniform(-30, 30), rng.Uniform(-30, 30)),
              Point(rng.Uniform(-30, 30), rng.Uniform(-30, 30)));
    const double lower =
        dist.LowerBoundFactor() * geom::SegmentToSegmentDistance(a, b);
    EXPECT_GE(dist(a, b), lower - 1e-9)
        << a.ToString() << " / " << b.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymmetryPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(SegmentDistanceTest, TriangleInequalityCanFail) {
  // §4.2: the distance is not a metric. Collinear chain: L2 touches both L1 and
  // L3 (distance 0 each) while L1 and L3 are 10 apart.
  const SegmentDistance dist;
  const Segment l1(Point(0, 0), Point(10, 0));
  const Segment l2(Point(10, 0), Point(20, 0));
  const Segment l3(Point(20, 0), Point(30, 0));
  EXPECT_DOUBLE_EQ(dist(l1, l2), 0.0);
  EXPECT_DOUBLE_EQ(dist(l2, l3), 0.0);
  EXPECT_GT(dist(l1, l3), dist(l1, l2) + dist(l2, l3));
}

TEST(SegmentDistanceTest, ThreeDimensionalSegmentsSupported) {
  const SegmentDistance dist;
  const Segment a(Point(0, 0, 0), Point(10, 0, 0));
  const Segment b(Point(2, 3, 4), Point(7, 3, 4));
  const DistanceComponents c = dist.Components(a, b);
  EXPECT_NEAR(c.perpendicular, 5.0, 1e-12);  // Both offsets are √(9+16) = 5.
  EXPECT_NEAR(c.angle, 0.0, 1e-12);
  EXPECT_NEAR(c.parallel, 2.0, 1e-12);  // ps=(2,0,0) → min(2, 8) = 2.
}

TEST(SegmentDistanceTest, TranslationInvariance) {
  common::Rng rng(77);
  const SegmentDistance dist;
  for (int i = 0; i < 50; ++i) {
    const Point shift(rng.Uniform(-1000, 1000), rng.Uniform(-1000, 1000));
    Segment a(Point(rng.Uniform(-10, 10), rng.Uniform(-10, 10)),
              Point(rng.Uniform(-10, 10), rng.Uniform(-10, 10)));
    Segment b(Point(rng.Uniform(-10, 10), rng.Uniform(-10, 10)),
              Point(rng.Uniform(-10, 10), rng.Uniform(-10, 10)));
    Segment a2(a.start() + shift, a.end() + shift);
    Segment b2(b.start() + shift, b.end() + shift);
    EXPECT_NEAR(dist(a, b), dist(a2, b2), 1e-7);
  }
}

// --- Appendix A baselines. ---

TEST(EndpointDistanceTest, AppendixAExampleNaiveMeasureCannotRank) {
  const Segment l1(Point(0, 0), Point(200, 0));
  const Segment l2(Point(100, 100), Point(300, 100));
  const Segment l3(Point(100, 100), Point(200, 200));
  // Both nearest-endpoint sums are exactly 200·√2 — the naive measure ties.
  const double expected = 200.0 * std::sqrt(2.0);
  EXPECT_NEAR(DirectedNearestEndpointSum(l1, l2), expected, 1e-9);
  EXPECT_NEAR(DirectedNearestEndpointSum(l1, l3), expected, 1e-9);
  // The TRACLUS distance ranks L2 (parallel) closer than L3 (45° rotated).
  const SegmentDistance dist;
  EXPECT_LT(dist(l1, l2), dist(l1, l3));
}

TEST(EndpointDistanceTest, CorrespondingSumIsOrientationInsensitive) {
  const Segment a(Point(0, 0), Point(10, 0));
  const Segment b(Point(10, 1), Point(0, 1));  // Reversed parallel.
  EXPECT_NEAR(EndpointSumDistance(a, b), 2.0, 1e-12);
}

TEST(EndpointDistanceTest, SymmetrizedNearestEndpointIsSymmetric) {
  common::Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    Segment a(Point(rng.Uniform(-20, 20), rng.Uniform(-20, 20)),
              Point(rng.Uniform(-20, 20), rng.Uniform(-20, 20)));
    Segment b(Point(rng.Uniform(-20, 20), rng.Uniform(-20, 20)),
              Point(rng.Uniform(-20, 20), rng.Uniform(-20, 20)));
    EXPECT_DOUBLE_EQ(NearestEndpointSumDistance(a, b),
                     NearestEndpointSumDistance(b, a));
  }
}

TEST(EndpointDistanceTest, IdenticalSegmentsAreZeroUnderAllMeasures) {
  const Segment s(Point(1, 2), Point(3, 4));
  EXPECT_DOUBLE_EQ(EndpointSumDistance(s, s), 0.0);
  EXPECT_DOUBLE_EQ(NearestEndpointSumDistance(s, s), 0.0);
}

// --- Batched kernels (distance/batch_kernels.h): bitwise equality with the
// --- cached pair path, refine equivalence at every block size, and prune
// --- admissibility.

// Adversarial segment corpus: general-position, degenerate (point-like),
// exactly tied lengths (translates, with and without usable ids), shared
// endpoints, and collinear chains — every branch of the canonical kernel.
traj::SegmentStore AdversarialStore(uint64_t seed, bool three_d) {
  common::Rng rng(seed);
  std::vector<Segment> segs;
  auto random_point = [&](double lo, double hi) {
    return three_d ? Point(rng.Uniform(lo, hi), rng.Uniform(lo, hi),
                           rng.Uniform(lo, hi))
                   : Point(rng.Uniform(lo, hi), rng.Uniform(lo, hi));
  };
  const auto id_of = [&](size_t k) {
    // A sprinkle of -1 ids forces the lexicographic tie-break path.
    return k % 7 == 3 ? geom::SegmentId{-1}
                      : static_cast<geom::SegmentId>(k);
  };
  // General position.
  for (int i = 0; i < 40; ++i) {
    segs.emplace_back(random_point(-50, 50), random_point(-50, 50),
                      id_of(segs.size()),
                      static_cast<geom::TrajectoryId>(i % 5));
  }
  // Point-like (zero-length) segments.
  for (int i = 0; i < 6; ++i) {
    const Point p = random_point(-50, 50);
    segs.emplace_back(p, p, id_of(segs.size()), 0);
  }
  // Exact translates: identical FP lengths, so the Lemma 2 tie-breaks fire.
  for (int i = 0; i < 6; ++i) {
    const Point s = random_point(-40, 40);
    const Point d = random_point(-5, 5);
    const Point shift = random_point(-20, 20);
    segs.emplace_back(s, s + d, id_of(segs.size()), 1);
    segs.emplace_back(s + shift, s + shift + d, id_of(segs.size()), 2);
  }
  // Shared endpoints / collinear chain (zero parallel / zero perpendicular
  // regimes).
  const Point base = random_point(-10, 10);
  const Point step = three_d ? Point(7, 0, 0) : Point(7, 0);
  for (int i = 0; i < 5; ++i) {
    segs.emplace_back(base + step * static_cast<double>(i),
                      base + step * static_cast<double>(i + 1),
                      id_of(segs.size()), 3);
  }
  return traj::SegmentStore(std::move(segs));
}

std::vector<SegmentDistanceConfig> KernelTestConfigs() {
  SegmentDistanceConfig defaults;
  SegmentDistanceConfig undirected;
  undirected.directed = false;
  SegmentDistanceConfig weighted;
  weighted.w_perpendicular = 2.5;
  weighted.w_parallel = 0.25;
  weighted.w_angle = 1.75;
  SegmentDistanceConfig no_bound;  // LowerBoundFactor == 0: prune disabled.
  no_bound.w_parallel = 0.0;
  return {defaults, undirected, weighted, no_bound};
}

std::vector<BatchKernel> CompiledKernels() {
  std::vector<BatchKernel> kernels = {BatchKernel::kScalar};
  if (SimdCompiled()) kernels.push_back(BatchKernel::kSimd);
  return kernels;
}

// Bit-level equality matters: EXPECT_EQ on doubles would treat -0.0 == +0.0
// and NaN != NaN; the kernels promise the same bit pattern.
void ExpectBitEqual(double a, double b, const char* what, size_t q, size_t j) {
  uint64_t ab, bb;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  EXPECT_EQ(ab, bb) << what << " mismatch at pair (" << q << ", " << j
                    << "): " << a << " vs " << b;
}

TEST(BatchKernelTest, DistanceBatchBitIdenticalToCachedPairPath) {
  for (const bool three_d : {false, true}) {
    const traj::SegmentStore store = AdversarialStore(19, three_d);
    const size_t n = store.size();
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    for (const SegmentDistanceConfig& cfg : KernelTestConfigs()) {
      const SegmentDistance dist(cfg);
      for (const BatchKernel kernel : CompiledKernels()) {
        std::vector<double> out(n);
        for (size_t q = 0; q < n; ++q) {
          DistanceBatch(store, dist, q,
                        common::Span<const size_t>(all.data(), n),
                        common::Span<double>(out.data(), n), kernel);
          for (size_t j = 0; j < n; ++j) {
            ExpectBitEqual(out[j], dist(store, q, j),
                           BatchKernelName(kernel), q, j);
          }
        }
      }
    }
  }
}

TEST(BatchKernelTest, DistanceBatchRangeMatchesIndexedBatch) {
  const traj::SegmentStore store = AdversarialStore(23, false);
  const SegmentDistance dist;
  const size_t n = store.size();
  for (const BatchKernel kernel : CompiledKernels()) {
    std::vector<double> out(n - 5);
    DistanceBatchRange(store, dist, 2, 5, n,
                       common::Span<double>(out.data(), out.size()), kernel);
    for (size_t j = 5; j < n; ++j) {
      ExpectBitEqual(out[j - 5], dist(store, 2, j), "range", 2, j);
    }
  }
}

TEST(BatchKernelTest, EpsilonRefineMatchesPerPairLoopAtEveryBlockSize) {
  for (const bool three_d : {false, true}) {
    const traj::SegmentStore store = AdversarialStore(29, three_d);
    const size_t n = store.size();
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    for (const SegmentDistanceConfig& cfg : KernelTestConfigs()) {
      const SegmentDistance dist(cfg);
      for (const double eps : {0.01, 2.0, 9.0, 40.0}) {
        for (size_t q = 0; q < n; q += 3) {
          // The reference: the per-pair cached path, candidate order kept.
          std::vector<size_t> expect;
          for (const size_t j : all) {
            if (j == q || dist(store, q, j) <= eps) expect.push_back(j);
          }
          for (const BatchKernel kernel : CompiledKernels()) {
            for (const size_t block : {size_t{1}, size_t{2}, size_t{3},
                                       size_t{7}, size_t{256}}) {
              BatchOptions options;
              options.kernel = kernel;
              options.block = block;
              std::vector<size_t> got;
              RefineStats stats;
              EpsilonRefine(store, dist, q,
                            common::Span<const size_t>(all.data(), n), eps,
                            got, options, &stats);
              EXPECT_EQ(got, expect)
                  << BatchKernelName(kernel) << " block " << block << " eps "
                  << eps << " query " << q;
              EXPECT_EQ(stats.candidates, n);
              EXPECT_EQ(stats.pruned + stats.refined, n);
              EXPECT_EQ(stats.accepted, got.size());
            }
          }
        }
      }
    }
  }
}

TEST(BatchKernelTest, PruneIsAdmissible) {
  // The lower bound must NEVER prune a true ε-neighbor: whenever the
  // predicate fires, the exact distance must exceed ε. Swept over the
  // adversarial corpus, random weight configurations, and an ε ladder.
  common::Rng rng(41);
  for (const bool three_d : {false, true}) {
    const traj::SegmentStore store = AdversarialStore(37, three_d);
    const size_t n = store.size();
    for (int trial = 0; trial < 8; ++trial) {
      SegmentDistanceConfig cfg;
      cfg.w_perpendicular = rng.Uniform(0.05, 3.0);
      cfg.w_parallel = rng.Uniform(0.05, 3.0);
      cfg.w_angle = rng.Uniform(0.0, 3.0);
      cfg.directed = rng.Bernoulli(0.5);
      const SegmentDistance dist(cfg);
      for (const double eps : {0.01, 1.0, 5.0, 25.0, 120.0}) {
        size_t pruned = 0;
        for (size_t q = 0; q < n; ++q) {
          for (size_t j = 0; j < n; ++j) {
            if (!PruneProvablyFar(store, dist, q, j, eps)) continue;
            ++pruned;
            EXPECT_GT(dist(store, q, j), eps)
                << "inadmissible prune at (" << q << ", " << j << ") eps "
                << eps;
          }
        }
        // The sweep must actually exercise the prune somewhere.
        if (eps <= 1.0) EXPECT_GT(pruned, 0u);
      }
    }
  }
}

TEST(BatchKernelTest, PairwiseMatrixBatchedMatchesPerPair) {
  const traj::SegmentStore store = AdversarialStore(43, false);
  const SegmentDistance dist;
  for (const BatchKernel kernel : CompiledKernels()) {
    for (const int threads : {1, 4}) {
      const common::Matrix m = PairwiseDistanceMatrix(
          store, dist, common::SharedPool(threads), kernel);
      for (size_t i = 0; i < store.size(); ++i) {
        for (size_t j = 0; j < store.size(); ++j) {
          ExpectBitEqual(m(i, j), i == j ? 0.0 : dist(store, i, j), "matrix",
                         i, j);
        }
      }
    }
  }
}

TEST(BatchKernelTest, DistanceTileBitIdenticalToBatchAndPairPath) {
  // Every (query-block, candidate-block) shape — 1×1, ragged, skewed, full —
  // must produce the same bits as the one-vs-many batch and the cached pair
  // path. The tile is just a loop arrangement; splitting or regrouping a
  // batch must never change a single bit.
  for (const bool three_d : {false, true}) {
    const traj::SegmentStore store = AdversarialStore(53, three_d);
    const size_t n = store.size();
    const std::vector<std::pair<size_t, size_t>> shapes = {
        {1, 1}, {1, n}, {n, 1}, {3, 7}, {5, n - 3}, {n, n}};
    for (const SegmentDistanceConfig& cfg : KernelTestConfigs()) {
      const SegmentDistance dist(cfg);
      for (const BatchKernel kernel : CompiledKernels()) {
        for (const auto& [mq, nc] : shapes) {
          // Strided (and so possibly duplicated) index sets: tiles must not
          // assume sorted or unique rows/columns.
          std::vector<size_t> queries(mq), cands(nc);
          for (size_t i = 0; i < mq; ++i) queries[i] = (i * 5 + 1) % n;
          for (size_t j = 0; j < nc; ++j) cands[j] = (j * 3 + 2) % n;
          const size_t ldo = nc + 3;  // Padded stride must be respected.
          std::vector<double> tile(mq * ldo, -1.0);
          DistanceTile(store, dist,
                       common::Span<const size_t>(queries.data(), mq),
                       common::Span<const size_t>(cands.data(), nc),
                       tile.data(), ldo, kernel);
          std::vector<double> row(nc);
          for (size_t qi = 0; qi < mq; ++qi) {
            DistanceBatch(store, dist, queries[qi],
                          common::Span<const size_t>(cands.data(), nc),
                          common::Span<double>(row.data(), nc), kernel);
            for (size_t j = 0; j < nc; ++j) {
              ExpectBitEqual(tile[qi * ldo + j], row[j], "tile-vs-batch", qi,
                             j);
              ExpectBitEqual(tile[qi * ldo + j],
                             dist(store, queries[qi], cands[j]),
                             "tile-vs-pair", qi, j);
            }
            for (size_t j = nc; j < ldo; ++j) {
              EXPECT_EQ(tile[qi * ldo + j], -1.0)
                  << "tile wrote past row width at (" << qi << ", " << j
                  << ")";
            }
          }
        }
      }
    }
  }
}

TEST(BatchKernelTest, DistanceTileRangeMatchesIndexedTile) {
  const traj::SegmentStore store = AdversarialStore(59, false);
  const SegmentDistance dist;
  const size_t n = store.size();
  for (const BatchKernel kernel : CompiledKernels()) {
    const size_t q_first = 2, q_last = n - 1, c_first = 1, c_last = n - 4;
    const size_t mq = q_last - q_first, nc = c_last - c_first;
    std::vector<double> got(mq * nc);
    DistanceTileRange(store, dist, q_first, q_last, c_first, c_last,
                      got.data(), nc, kernel);
    for (size_t qi = 0; qi < mq; ++qi) {
      for (size_t j = 0; j < nc; ++j) {
        ExpectBitEqual(got[qi * nc + j],
                       dist(store, q_first + qi, c_first + j), "tile-range",
                       qi, j);
      }
    }
  }
}

TEST(BatchKernelTest, EpsilonRefineTileMatchesPerQueryRefine) {
  for (const bool three_d : {false, true}) {
    const traj::SegmentStore store = AdversarialStore(67, three_d);
    const size_t n = store.size();
    for (const SegmentDistanceConfig& cfg : KernelTestConfigs()) {
      const SegmentDistance dist(cfg);
      for (const double eps : {0.01, 2.0, 9.0}) {
        for (const BatchKernel kernel : CompiledKernels()) {
          for (const size_t block : {size_t{1}, size_t{3}, size_t{256}}) {
            BatchOptions options;
            options.kernel = kernel;
            options.block = block;
            std::vector<size_t> queries;
            for (size_t q = 0; q < n; q += 2) queries.push_back(q);
            std::vector<std::vector<size_t>> lists(queries.size());
            EpsilonRefineTile(
                store, dist,
                common::Span<const size_t>(queries.data(), queries.size()), 0,
                n, eps, lists.data(), options);
            for (size_t k = 0; k < queries.size(); ++k) {
              std::vector<size_t> expect;
              EpsilonRefineRange(store, dist, queries[k], 0, n, eps, expect,
                                 options);
              EXPECT_EQ(lists[k], expect)
                  << BatchKernelName(kernel) << " block " << block << " eps "
                  << eps << " query " << queries[k];
            }
          }
        }
      }
    }
  }
}

TEST(BatchKernelTest, NearestWithinEpsMatchesReferenceArgmin) {
  for (const bool three_d : {false, true}) {
    const traj::SegmentStore store = AdversarialStore(71, three_d);
    const size_t n = store.size();
    // Candidate set with duplicates: ties must resolve to the EARLIEST
    // position in the span, for every kernel.
    std::vector<size_t> cands;
    for (size_t j = 0; j < n; j += 2) cands.push_back(j);
    for (size_t j = 0; j < n; j += 5) cands.push_back(j);
    std::vector<size_t> queries;
    for (size_t q = 0; q < n; ++q) queries.push_back(q);
    for (const SegmentDistanceConfig& cfg : KernelTestConfigs()) {
      const SegmentDistance dist(cfg);
      for (const double eps : {0.01, 2.0, 9.0, 1e300}) {
        // Reference: scan candidates in span order, strict-< argmin.
        std::vector<size_t> expect_pos(queries.size(), kNoNearest);
        std::vector<double> expect_dist(
            queries.size(), std::numeric_limits<double>::infinity());
        for (size_t k = 0; k < queries.size(); ++k) {
          for (size_t c = 0; c < cands.size(); ++c) {
            const double d = dist(store, queries[k], cands[c]);
            if (d <= eps && d < expect_dist[k]) {
              expect_dist[k] = d;
              expect_pos[k] = c;
            }
          }
        }
        for (const BatchKernel kernel : CompiledKernels()) {
          for (const size_t block : {size_t{1}, size_t{7}, size_t{256}}) {
            BatchOptions options;
            options.kernel = kernel;
            options.block = block;
            std::vector<size_t> pos(queries.size());
            std::vector<double> dmin(queries.size());
            NearestWithinEps(
                store, dist,
                common::Span<const size_t>(queries.data(), queries.size()),
                common::Span<const size_t>(cands.data(), cands.size()), eps,
                common::Span<size_t>(pos.data(), pos.size()),
                common::Span<double>(dmin.data(), dmin.size()), options);
            for (size_t k = 0; k < queries.size(); ++k) {
              EXPECT_EQ(pos[k], expect_pos[k])
                  << BatchKernelName(kernel) << " block " << block << " eps "
                  << eps << " query " << queries[k];
              if (expect_pos[k] != kNoNearest) {
                ExpectBitEqual(dmin[k], expect_dist[k], "nearest-dist", k,
                               expect_pos[k]);
              }
            }
          }
        }
      }
    }
  }
}

TEST(BatchKernelTest, KernelSelectionHelpers) {
  EXPECT_STREQ(BatchKernelName(BatchKernel::kAuto), "auto");
  EXPECT_STREQ(BatchKernelName(BatchKernel::kScalar), "scalar");
  EXPECT_STREQ(BatchKernelName(BatchKernel::kSimd), "simd");
  // Round trip: every kernel's name parses back to itself through the one
  // string→kernel path in the tree.
  for (const BatchKernel k :
       {BatchKernel::kAuto, BatchKernel::kScalar, BatchKernel::kSimd}) {
    const auto parsed = ParseBatchKernel(BatchKernelName(k));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, k);
  }
  const auto bad = ParseBatchKernel("avx512");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), common::StatusCode::kInvalidArgument);
  // Resolution never yields kAuto, and kSimd only when compiled in.
  EXPECT_NE(ResolveBatchKernel(BatchKernel::kAuto), BatchKernel::kAuto);
  if (!SimdCompiled()) {
    EXPECT_EQ(ResolveBatchKernel(BatchKernel::kSimd), BatchKernel::kScalar);
  } else {
    EXPECT_EQ(ResolveBatchKernel(BatchKernel::kSimd), BatchKernel::kSimd);
  }
}

}  // namespace
}  // namespace traclus::distance
