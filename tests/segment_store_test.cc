// SegmentStore: the invariant cache must be indistinguishable — bit for bit —
// from recomputing each quantity from the segment endpoints, and the
// invariant-aware distance fast path must reproduce the Segment-based
// distance exactly. Randomized segments cover degenerate (zero-length),
// equal-length (Lemma 2 tie-break), unidentified (id -1), weighted, and 3-D
// cases; bitwise equality is asserted with EXPECT_EQ on doubles on purpose.

#include "traj/segment_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "distance/segment_distance.h"
#include "geom/segment.h"

namespace traclus {
namespace {

std::vector<geom::Segment> RandomSegments(size_t n, uint64_t seed,
                                          bool three_d = false) {
  common::Rng rng(seed);
  std::vector<geom::Segment> segs;
  segs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    geom::Point s;
    geom::Point e;
    if (three_d) {
      s = geom::Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50),
                      rng.Uniform(-50, 50));
      e = geom::Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50),
                      rng.Uniform(-50, 50));
    } else {
      s = geom::Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50));
      e = geom::Point(rng.Uniform(-50, 50), rng.Uniform(-50, 50));
    }
    // Sprinkle the edge cases the distance kernel branches on.
    if (i % 11 == 0) e = s;                     // Degenerate segment.
    const auto id = i % 7 == 0 ? geom::SegmentId{-1}
                               : static_cast<geom::SegmentId>(i);
    segs.emplace_back(s, e, id, static_cast<geom::TrajectoryId>(i % 13),
                      rng.Uniform(0.5, 3.0));
  }
  // Exact duplicates force the equal-length tie-break paths.
  if (n > 4) {
    segs[3] = geom::Segment(segs[2].start(), segs[2].end(), 3, 5, 1.0);
    segs[4] = geom::Segment(segs[2].start(), segs[2].end(), -1, 6, 1.0);
  }
  return segs;
}

TEST(SegmentStoreTest, InvariantsMatchFreshComputation) {
  for (const bool three_d : {false, true}) {
    SCOPED_TRACE(three_d ? "3d" : "2d");
    const auto segs = RandomSegments(200, 42, three_d);
    const traj::SegmentStore store(segs);
    ASSERT_EQ(store.size(), segs.size());
    EXPECT_EQ(store.dims(), three_d ? 3 : 2);
    for (size_t i = 0; i < segs.size(); ++i) {
      const geom::Segment& s = segs[i];
      EXPECT_EQ(store.segment(i), s);
      EXPECT_EQ(store.length(i), s.Length());
      EXPECT_EQ(store.squared_length(i), s.Direction().SquaredNorm());
      EXPECT_EQ(store.inv_length(i),
                s.Length() > 0.0 ? 1.0 / s.Length() : 0.0);
      for (int d = 0; d < s.dims(); ++d) {
        EXPECT_EQ(store.direction(i)[d], s.Direction()[d]);
        EXPECT_EQ(store.unit_direction(i)[d],
                  s.Direction()[d] * store.inv_length(i));
        EXPECT_EQ(store.midpoint(i)[d], s.Midpoint()[d]);
        EXPECT_EQ(store.bbox(i).lo(d), std::min(s.start()[d], s.end()[d]));
        EXPECT_EQ(store.bbox(i).hi(d), std::max(s.start()[d], s.end()[d]));
      }
      EXPECT_EQ(store.id(i), s.id());
      EXPECT_EQ(store.trajectory_id(i), s.trajectory_id());
      EXPECT_EQ(store.weight(i), s.weight());
    }
  }
}

TEST(SegmentStoreTest, EmptyStoreIsWellFormed) {
  const traj::SegmentStore store;
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.dims(), 2);
}

// The heart of the refactor: the fast path must agree with the Segment path
// to the last bit, on every pair, for every distance configuration the
// pipeline uses.
TEST(SegmentStoreTest, DistanceFastPathIsBitIdentical) {
  const auto segs = RandomSegments(120, 7);
  const traj::SegmentStore store(segs);
  for (const bool directed : {true, false}) {
    SCOPED_TRACE(directed ? "directed" : "undirected");
    distance::SegmentDistanceConfig config;
    config.directed = directed;
    config.w_perpendicular = 1.0;
    config.w_parallel = 0.75;
    config.w_angle = 1.25;
    const distance::SegmentDistance dist(config);
    for (size_t i = 0; i < segs.size(); ++i) {
      for (size_t j = 0; j < segs.size(); ++j) {
        const auto slow = dist.Components(segs[i], segs[j]);
        const auto fast = dist.Components(store, i, j);
        ASSERT_EQ(fast.perpendicular, slow.perpendicular) << i << "," << j;
        ASSERT_EQ(fast.parallel, slow.parallel) << i << "," << j;
        ASSERT_EQ(fast.angle, slow.angle) << i << "," << j;
        ASSERT_EQ(dist(store, i, j), dist(segs[i], segs[j])) << i << ","
                                                             << j;
      }
    }
  }
}

TEST(SegmentStoreTest, PairwiseMatrixMatchesVectorPath) {
  const auto segs = RandomSegments(64, 19);
  const traj::SegmentStore store(segs);
  const distance::SegmentDistance dist;
  auto& pool = common::SharedPool(2);
  const auto from_vector = distance::PairwiseDistanceMatrix(segs, dist, pool);
  const auto from_store = distance::PairwiseDistanceMatrix(store, dist, pool);
  ASSERT_EQ(from_store.rows(), from_vector.rows());
  ASSERT_EQ(from_store.cols(), from_vector.cols());
  for (size_t i = 0; i < from_store.rows(); ++i) {
    for (size_t j = 0; j < from_store.cols(); ++j) {
      EXPECT_EQ(from_store(i, j), from_vector(i, j));
    }
  }
}

}  // namespace
}  // namespace traclus
