// Tests for the pull-based ingest API (traj/source.h): parser equivalence
// with the eager ParseCsv/ReadCsv wrappers, the mid-stream failure contract
// (typed InvalidArgument naming the exact line, sticky failure, no partial
// trajectory or segment ever leaked), stdin-style stream sources, and the
// DatabaseSource adapter.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "traj/csv_io.h"
#include "traj/source.h"

namespace traclus::traj {
namespace {

using common::StatusCode;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f << content;
}

void ExpectSameDatabase(const TrajectoryDatabase& got,
                        const TrajectoryDatabase& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t t = 0; t < want.size(); ++t) {
    EXPECT_EQ(got[t].id(), want[t].id()) << "trajectory " << t;
    EXPECT_EQ(got[t].weight(), want[t].weight()) << "trajectory " << t;
    ASSERT_EQ(got[t].size(), want[t].size()) << "trajectory " << t;
    for (size_t p = 0; p < want[t].size(); ++p) {
      EXPECT_EQ(got[t][p].dims(), want[t][p].dims());
      for (int d = 0; d < want[t][p].dims(); ++d) {
        EXPECT_EQ(got[t][p][d], want[t][p][d])
            << "trajectory " << t << " point " << p << " dim " << d;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Source ≡ eager parser.
// ---------------------------------------------------------------------------

constexpr const char* kMixedCsv =
    "trajectory_id,x,y\n"        // Tolerated header.
    "# comment line\n"
    "0,0.5,1.25\n"
    "0,1.5,2.5\n"
    "\n"                         // Blank line ignored.
    "7,3.0,4.0\n"
    "7,3.5,4.5\n"
    "7,4.0,5.0\n"
    "-3,9.0,9.5\n"               // Negative id: assigned by Add.
    "-3,9.5,10.0\n";

TEST(CsvSourceTest, StringSourceMatchesParseCsv) {
  const auto eager = ParseCsv(kMixedCsv);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();

  CsvStringSource source(kMixedCsv);
  const auto drained = DrainToDatabase(source);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  ExpectSameDatabase(*drained, *eager);
  ASSERT_EQ(drained->size(), 3u);
  // The negative-id trajectory takes its database position, as Add always did.
  EXPECT_EQ((*drained)[2].id(), 2);
}

TEST(CsvSourceTest, YieldsTrajectoriesOneAtATimeInInputOrder) {
  CsvStringSource source("1,0,0\n1,1,1\n2,5,5\n3,6,6\n3,7,7\n3,8,8\n");
  Trajectory tr;
  std::vector<geom::TrajectoryId> ids;
  std::vector<size_t> sizes;
  while (true) {
    const auto more = source.Next(&tr);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    ids.push_back(tr.id());
    sizes.push_back(tr.size());
  }
  EXPECT_EQ(ids, (std::vector<geom::TrajectoryId>{1, 2, 3}));
  EXPECT_EQ(sizes, (std::vector<size_t>{2, 1, 3}));
  // Exhausted source stays exhausted.
  const auto again = source.Next(&tr);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
}

TEST(CsvSourceTest, FileSourceMatchesReadCsv) {
  const std::string path = TempPath("source_roundtrip.csv");
  WriteFile(path, kMixedCsv);
  const auto eager = ReadCsv(path);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();

  auto file = CsvFileSource::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  const auto drained = DrainToDatabase(**file);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  ExpectSameDatabase(*drained, *eager);
  std::remove(path.c_str());
}

TEST(CsvSourceTest, MissingFileIsIOError) {
  const auto file = CsvFileSource::Open("/nonexistent/definitely/not.csv");
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kIOError);
  EXPECT_NE(file.status().ToString().find("/nonexistent/definitely/not.csv"),
            std::string::npos);
}

TEST(CsvSourceTest, StreamSourceReadsAnyIstream) {
  std::istringstream in("4,1,2\n4,3,4\n");
  CsvStreamSource source(in);
  Trajectory tr;
  const auto more = source.Next(&tr);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(*more);
  EXPECT_EQ(tr.id(), 4);
  EXPECT_EQ(tr.size(), 2u);
}

// ---------------------------------------------------------------------------
// Mid-stream failures: the exact line is named, the failure is sticky, and
// nothing partially ingested escapes.
// ---------------------------------------------------------------------------

TEST(CsvSourceFailureTest, TruncatedRowNamesItsLine) {
  // A file cut off mid-row: the final line has too few fields.
  CsvStringSource source("1,0,0\n1,1,1\n1,2");
  Trajectory tr;
  const auto more = source.Next(&tr);
  ASSERT_FALSE(more.ok());
  EXPECT_EQ(more.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(more.status().ToString().find("CSV line 3"), std::string::npos)
      << more.status().ToString();
}

TEST(CsvSourceFailureTest, MalformedRowDeepInLargeInputNamesExactLine) {
  // 10k clean rows, one corrupted coordinate deep inside.
  std::ostringstream csv;
  constexpr size_t kRows = 10000;
  constexpr size_t kBadLine = 8641;  // 1-based.
  for (size_t i = 1; i <= kRows; ++i) {
    if (i == kBadLine) {
      csv << i / 10 << ",not-a-number," << i << "\n";
    } else {
      csv << i / 10 << "," << i << "," << i << "\n";
    }
  }
  CsvStringSource source(csv.str());
  Trajectory tr;
  size_t yielded = 0;
  common::Status failure = common::Status::OK();
  while (true) {
    const auto more = source.Next(&tr);
    if (!more.ok()) {
      failure = more.status();
      break;
    }
    if (!*more) break;
    ++yielded;
  }
  ASSERT_FALSE(failure.ok()) << "the corrupted row must surface";
  EXPECT_EQ(failure.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(failure.ToString().find("CSV line 8641"), std::string::npos)
      << failure.ToString();
  EXPECT_NE(failure.ToString().find("bad coordinate"), std::string::npos);
  // Every trajectory fully before the bad row was yielded (ids 0..863); the
  // one the bad row belongs to (id 864) was not.
  EXPECT_EQ(yielded, kBadLine / 10);
}

TEST(CsvSourceFailureTest, NonContiguousTrajectoryIdNamesItsLine) {
  CsvStringSource source("1,0,0\n2,1,1\n1,2,2\n");
  Trajectory tr;
  const auto first = source.Next(&tr);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(*first);
  EXPECT_EQ(tr.id(), 1);

  const auto second = source.Next(&tr);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kInvalidArgument);
  const std::string msg = second.status().ToString();
  EXPECT_NE(msg.find("CSV line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("reappears"), std::string::npos) << msg;
}

TEST(CsvSourceFailureTest, FailureIsStickyAndYieldsNoPartialTrajectory) {
  CsvStringSource source("1,0,0\n1,1,1\nbogus-id,2,2\n1,3,3\n");
  Trajectory tr;
  const auto first = source.Next(&tr);
  ASSERT_FALSE(first.ok());
  const std::string msg = first.status().ToString();
  EXPECT_NE(msg.find("CSV line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("bad trajectory id 'bogus-id'"), std::string::npos)
      << msg;

  // Every later call repeats the identical status; the stream never resumes
  // past the error, so the valid-looking line 4 is unreachable.
  for (int i = 0; i < 3; ++i) {
    const auto again = source.Next(&tr);
    ASSERT_FALSE(again.ok());
    EXPECT_EQ(again.status().ToString(), msg);
  }
}

TEST(CsvSourceFailureTest, DrainReturnsNoPartialDatabase) {
  CsvStringSource source("1,0,0\n1,1,1\n2,5,5\n2,oops,6\n");
  const auto drained = DrainToDatabase(source);
  ASSERT_FALSE(drained.ok());
  EXPECT_EQ(drained.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(drained.status().ToString().find("CSV line 4"), std::string::npos);
}

TEST(CsvSourceFailureTest, StreamingEngineRunPropagatesIngestErrors) {
  // The streaming pipeline must surface the typed parse status — naming the
  // line — and hand back no partially-ingested result.
  CsvStringSource source(
      "1,0,0\n1,1,1\n1,2,2\n"
      "2,5,5\n2,6,6\n"
      "3,9,9\n3,10,nope\n");
  const auto engine = core::TraclusEngine::Builder().Build();
  ASSERT_TRUE(engine.ok());
  const auto run = engine->Run(source);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(run.status().ToString().find("CSV line 7"), std::string::npos)
      << run.status().ToString();
}

TEST(CsvSourceFailureTest, MixedDimensionalityNamesItsLine) {
  CsvStringSource source("1,0,0\n1,1,1,2,0.5\n");
  Trajectory tr;
  const auto more = source.Next(&tr);
  ASSERT_FALSE(more.ok());
  const std::string msg = more.status().ToString();
  EXPECT_NE(msg.find("CSV line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("same dimensionality"), std::string::npos) << msg;
}

// ---------------------------------------------------------------------------
// DatabaseSource: the eager → streaming bridge.
// ---------------------------------------------------------------------------

TEST(DatabaseSourceTest, RoundTripsTheDatabase) {
  TrajectoryDatabase db;
  Trajectory a(10, "a", 2.0);
  a.Add(geom::Point(0, 0));
  a.Add(geom::Point(1, 1));
  Trajectory b(20, "b");
  b.Add(geom::Point(5, 5));
  b.Add(geom::Point(6, 6));
  db.Add(std::move(a));
  db.Add(std::move(b));

  DatabaseSource source(db);
  const auto drained = DrainToDatabase(source);
  ASSERT_TRUE(drained.ok());
  ExpectSameDatabase(*drained, db);
}

}  // namespace
}  // namespace traclus::traj
