// Tests for SieveGroupStage (core/sieve_stage.h): the k = 1 transparency
// contract (byte-identical to the inner backend), determinism across thread
// counts and kernels for a fixed (k, offset), the sampling rule itself, and
// the Validate error surface.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "core/engine.h"
#include "core/sieve_stage.h"
#include "datagen/hurricane_generator.h"
#include "distance/batch_kernels.h"
#include "traj/segment_store.h"
#include "traj/trajectory_database.h"

namespace traclus::core {
namespace {

// The golden pipeline's hurricane corpus and parameters (ε = 0.94,
// MinLns = 5 — the same configuration tests/golden/hurricane.golden pins),
// partitioned once into the store the grouping stages consume.
const traj::SegmentStore& HurricaneStore() {
  static const traj::SegmentStore* store = [] {
    const traj::TrajectoryDatabase db =
        datagen::GenerateHurricanes(datagen::HurricaneConfig{});
    auto engine = TraclusEngine::FromConfig(TraclusConfig{});
    EXPECT_TRUE(engine.ok());
    auto partitioned = engine->Partition(db);
    EXPECT_TRUE(partitioned.ok());
    return new traj::SegmentStore(std::move(partitioned->store));
  }();
  return *store;
}

DbscanGroupOptions HurricaneGroupOptions() {
  DbscanGroupOptions options;
  options.eps = 0.94;
  options.min_lns = 5.0;
  return options;
}

SieveGroupStage MakeSieveStage() {
  const DbscanGroupOptions group = HurricaneGroupOptions();
  SieveGroupOptions sieve;
  sieve.eps = group.eps;
  sieve.distance = group.distance;
  return SieveGroupStage(std::make_shared<DbscanGroupStage>(group), sieve);
}

void ExpectSameClustering(const cluster::ClusteringResult& a,
                          const cluster::ClusteringResult& b) {
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.num_noise, b.num_noise);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t c = 0; c < a.clusters.size(); ++c) {
    EXPECT_EQ(a.clusters[c].id, b.clusters[c].id);
    EXPECT_EQ(a.clusters[c].member_indices, b.clusters[c].member_indices);
  }
}

TEST(SieveStageTest, NameAndValidate) {
  const SieveGroupStage stage = MakeSieveStage();
  EXPECT_STREQ(stage.name(), "group/sieve+dbscan");
  EXPECT_TRUE(stage.Validate().ok());
}

TEST(SieveStageTest, SieveDisabledIsInnerBackendByteForByte) {
  const traj::SegmentStore& store = HurricaneStore();
  const DbscanGroupStage inner(HurricaneGroupOptions());
  const SieveGroupStage stage = MakeSieveStage();
  const auto expect = inner.Run(store, RunContext{});
  ASSERT_TRUE(expect.ok());
  for (const size_t k : {size_t{0}, size_t{1}}) {
    RunContext ctx;
    ctx.sieve = k;
    const auto got = stage.Run(store, ctx);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameClustering(*got, *expect);
  }
}

TEST(SieveStageTest, DeterministicAcrossThreadsAndKernels) {
  const traj::SegmentStore& store = HurricaneStore();
  const SieveGroupStage stage = MakeSieveStage();
  for (const size_t k : {size_t{2}, size_t{3}}) {
    RunContext base_ctx;
    base_ctx.sieve = k;
    base_ctx.num_threads = 1;
    base_ctx.distance_kernel = distance::BatchKernel::kScalar;
    const auto reference = stage.Run(store, base_ctx);
    ASSERT_TRUE(reference.ok());
    for (const int threads : {1, 4}) {
      for (const distance::BatchKernel kernel :
           {distance::BatchKernel::kScalar, distance::BatchKernel::kSimd,
            distance::BatchKernel::kAuto}) {
        RunContext ctx;
        ctx.sieve = k;
        ctx.num_threads = threads;
        ctx.distance_kernel = kernel;
        const auto got = stage.Run(store, ctx);
        ASSERT_TRUE(got.ok());
        ExpectSameClustering(*got, *reference);
      }
    }
  }
}

TEST(SieveStageTest, SampledSegmentsKeepInnerLabelsAndOffsetsDiffer) {
  const traj::SegmentStore& store = HurricaneStore();
  const SieveGroupStage stage = MakeSieveStage();
  RunContext ctx;
  ctx.sieve = 4;
  const auto a = stage.Run(store, ctx);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->labels.size(), store.size());
  // Every label is a dense cluster id or noise — never unclassified.
  size_t noise = 0;
  for (const int label : a->labels) {
    EXPECT_GE(label, cluster::kNoise);
    EXPECT_LT(label, static_cast<int>(a->clusters.size()));
    if (label == cluster::kNoise) ++noise;
  }
  EXPECT_EQ(noise, a->num_noise);
  // Membership lists and labels agree.
  for (const auto& c : a->clusters) {
    for (const size_t i : c.member_indices) {
      EXPECT_EQ(a->labels[i], c.id);
    }
  }
  // A different residue class samples a different subset — the runs are both
  // deterministic but (on real data) not identical.
  ctx.sieve_offset = 1;
  const auto b = stage.Run(store, ctx);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->labels, b->labels);
}

TEST(SieveStageTest, ChooseSieveKSpansTheStrideRange) {
  // Disabled and degenerate inputs run the inner backend in full.
  EXPECT_EQ(ChooseSieveK(1000, 0), 1u);
  EXPECT_EQ(ChooseSieveK(0, 100), 1u);
  EXPECT_EQ(ChooseSieveK(100, 100), 1u);
  EXPECT_EQ(ChooseSieveK(99, 100), 1u);
  // k = ceil(n / target) across the whole useful stride range.
  const size_t n = 1600;
  for (size_t k = 1; k <= 16; ++k) {
    const size_t target = (n + k - 1) / k;
    EXPECT_EQ(ChooseSieveK(n, target), k) << "target " << target;
  }
  // Non-divisible sizes round the stride up, never down: the sample is at
  // most the target, never above it.
  EXPECT_EQ(ChooseSieveK(1601, 100), 17u);
  EXPECT_EQ(ChooseSieveK(1599, 100), 16u);
  for (const size_t target : {size_t{1}, size_t{7}, size_t{100}}) {
    const size_t k = ChooseSieveK(n, target);
    EXPECT_LE((n + k - 1) / k, target);
  }
}

TEST(SieveStageTest, AutoKMatchesExplicitStrideAndIsOverridable) {
  const traj::SegmentStore& store = HurricaneStore();
  const DbscanGroupOptions group = HurricaneGroupOptions();
  SieveGroupOptions sieve;
  sieve.eps = group.eps;
  sieve.distance = group.distance;
  // Target half the store: AutoK derives k = 2.
  sieve.auto_k.target_sample = (store.size() + 1) / 2;
  ASSERT_EQ(ChooseSieveK(store.size(), sieve.auto_k.target_sample), 2u);
  const SieveGroupStage auto_stage(
      std::make_shared<DbscanGroupStage>(group), sieve);
  ASSERT_TRUE(auto_stage.Validate().ok());

  const SieveGroupStage explicit_stage = MakeSieveStage();
  RunContext explicit_ctx;
  explicit_ctx.sieve = 2;
  const auto expect = explicit_stage.Run(store, explicit_ctx);
  ASSERT_TRUE(expect.ok());

  // AutoK with the context knob left at 0 equals the explicit stride run.
  const auto got = auto_stage.Run(store, RunContext{});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectSameClustering(*got, *expect);

  // An explicit per-run stride overrides AutoK; sieve = 1 forces the full
  // inner run.
  const DbscanGroupStage inner(group);
  const auto full = inner.Run(store, RunContext{});
  ASSERT_TRUE(full.ok());
  RunContext override_ctx;
  override_ctx.sieve = 1;
  const auto forced = auto_stage.Run(store, override_ctx);
  ASSERT_TRUE(forced.ok());
  ExpectSameClustering(*forced, *full);
}

TEST(SieveStageTest, ValidateRejectsBadConfigurations) {
  // Null inner stage.
  const SieveGroupStage null_inner(nullptr);
  EXPECT_EQ(null_inner.Validate().code(),
            common::StatusCode::kInvalidArgument);

  // Non-positive / non-finite assignment radius.
  SieveGroupOptions bad_eps;
  bad_eps.eps = 0.0;
  const SieveGroupStage zero_eps(
      std::make_shared<DbscanGroupStage>(HurricaneGroupOptions()), bad_eps);
  EXPECT_EQ(zero_eps.Validate().code(), common::StatusCode::kOutOfRange);

  // Negative distance weight.
  SieveGroupOptions bad_weight;
  bad_weight.distance.w_angle = -1.0;
  const SieveGroupStage neg_weight(
      std::make_shared<DbscanGroupStage>(HurricaneGroupOptions()),
      bad_weight);
  EXPECT_EQ(neg_weight.Validate().code(),
            common::StatusCode::kInvalidArgument);

  // An invalid inner configuration propagates through the decorator.
  DbscanGroupOptions bad_inner = HurricaneGroupOptions();
  bad_inner.eps = -1.0;
  const SieveGroupStage wraps_bad(
      std::make_shared<DbscanGroupStage>(bad_inner));
  EXPECT_FALSE(wraps_bad.Validate().ok());
}

TEST(SieveStageTest, BuilderWiresSieveAndFullPipelineRuns) {
  const traj::TrajectoryDatabase db =
      datagen::GenerateHurricanes(datagen::HurricaneConfig{});
  const DbscanGroupOptions group = HurricaneGroupOptions();
  SieveGroupOptions sieve;
  sieve.eps = group.eps;
  sieve.distance = group.distance;
  SweepRepresentativeOptions reps;
  reps.min_lns = group.min_lns;
  const auto plain = TraclusEngine::Builder()
                         .UseMdlPartitioning()
                         .UseDbscanGrouping(group)
                         .UseSweepRepresentatives(reps)
                         .Build();
  ASSERT_TRUE(plain.ok());
  const auto wrapped = TraclusEngine::Builder()
                           .UseMdlPartitioning()
                           .UseDbscanGrouping(group)
                           .UseSweepRepresentatives(reps)
                           .WithSieveGrouping(sieve)
                           .Build();
  ASSERT_TRUE(wrapped.ok()) << wrapped.status().ToString();

  // k = 1 through the full pipeline: identical to the unwrapped engine —
  // clustering and representatives both.
  RunContext ctx;
  ctx.sieve = 1;
  const auto expect = plain->Run(db, RunContext{});
  ASSERT_TRUE(expect.ok());
  const auto got = wrapped->Run(db, ctx);
  ASSERT_TRUE(got.ok());
  ExpectSameClustering(got->clustering, expect->clustering);
  ASSERT_EQ(got->representatives.size(), expect->representatives.size());
  for (size_t r = 0; r < got->representatives.size(); ++r) {
    ASSERT_EQ(got->representatives[r].size(),
              expect->representatives[r].size());
    for (size_t p = 0; p < got->representatives[r].size(); ++p) {
      EXPECT_EQ(got->representatives[r][p], expect->representatives[r][p]);
    }
  }

  // A sieved run completes and keeps the label domain well-formed.
  ctx.sieve = 4;
  const auto sieved = wrapped->Run(db, ctx);
  ASSERT_TRUE(sieved.ok()) << sieved.status().ToString();
  EXPECT_EQ(sieved->clustering.labels.size(), expect->clustering.labels.size());

  // Wrapping with no grouping backend configured fails at Build. (The
  // default-constructed Builder presets a DBSCAN stage, so the empty state
  // must be forced explicitly.)
  const auto no_inner = TraclusEngine::Builder()
                            .UseMdlPartitioning()
                            .SetGroupStage(nullptr)
                            .WithSieveGrouping(sieve)
                            .Build();
  EXPECT_FALSE(no_inner.ok());
}

}  // namespace
}  // namespace traclus::core
