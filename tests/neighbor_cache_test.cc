// Tests for the persistent neighbor cache (cluster/neighbor_cache_file.h)
// and its content-hash keying (distance/hashing.h): every key input
// perturbation must miss, every bad file must fail with the documented typed
// status (never a silent wrong answer), and served lists must be
// byte-identical to the base provider on both the cold and the warm path —
// through the raw provider API and through the full engine.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/neighbor_cache_file.h"
#include "cluster/neighborhood.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "datagen/hurricane_generator.h"
#include "distance/hashing.h"
#include "distance/segment_distance.h"
#include "geom/segment.h"
#include "traj/segment_store.h"
#include "traj/trajectory_database.h"

namespace traclus::cluster {
namespace {

// A fresh directory under the gtest temp root, unique per test.
std::string CacheDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "neighbor_cache_test_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// A small two-bundle segment set: enough structure for non-trivial
// neighborhoods, small enough that every list is easy to cross-check.
std::vector<geom::Segment> BaseSegments() {
  std::vector<geom::Segment> segments;
  geom::SegmentId id = 0;
  for (int b = 0; b < 2; ++b) {
    const double y0 = b * 50.0;
    for (int i = 0; i < 6; ++i) {
      segments.emplace_back(geom::Point(i * 0.3, y0 + 0.1 * i),
                            geom::Point(i * 0.3 + 4.0, y0 + 0.1 * i + 0.2),
                            id, /*trajectory_id=*/b * 6 + i);
      ++id;
    }
  }
  return segments;
}

constexpr double kEps = 2.5;

TEST(NeighborCacheKeyTest, EveryKeyInputPerturbationChangesTheKey) {
  const traj::SegmentStore store(BaseSegments());
  const distance::SegmentDistanceConfig config;
  const uint64_t key = distance::NeighborhoodCacheKey(store, config, kEps);

  // Stability first: rebuilding the same store yields the same key.
  EXPECT_EQ(distance::NeighborhoodCacheKey(traj::SegmentStore(BaseSegments()),
                                           config, kEps),
            key);

  // One-ULP coordinate change.
  {
    auto segments = BaseSegments();
    const geom::Segment& s = segments[3];
    segments[3] = geom::Segment(
        geom::Point(std::nextafter(s.start().x(), 1e9), s.start().y()),
        s.end(), s.id(), s.trajectory_id(), s.weight());
    EXPECT_NE(distance::NeighborhoodCacheKey(traj::SegmentStore(segments),
                                             config, kEps),
              key);
  }
  // Segment id.
  {
    auto segments = BaseSegments();
    const geom::Segment& s = segments[3];
    segments[3] = geom::Segment(s.start(), s.end(), s.id() + 100,
                                s.trajectory_id(), s.weight());
    EXPECT_NE(distance::NeighborhoodCacheKey(traj::SegmentStore(segments),
                                             config, kEps),
              key);
  }
  // Trajectory id.
  {
    auto segments = BaseSegments();
    const geom::Segment& s = segments[3];
    segments[3] = geom::Segment(s.start(), s.end(), s.id(),
                                s.trajectory_id() + 100, s.weight());
    EXPECT_NE(distance::NeighborhoodCacheKey(traj::SegmentStore(segments),
                                             config, kEps),
              key);
  }
  // Segment weight.
  {
    auto segments = BaseSegments();
    const geom::Segment& s = segments[3];
    segments[3] =
        geom::Segment(s.start(), s.end(), s.id(), s.trajectory_id(), 2.0);
    EXPECT_NE(distance::NeighborhoodCacheKey(traj::SegmentStore(segments),
                                             config, kEps),
              key);
  }
  // Each distance weight, one ULP.
  for (int which = 0; which < 3; ++which) {
    distance::SegmentDistanceConfig perturbed = config;
    double* w = which == 0   ? &perturbed.w_perpendicular
                : which == 1 ? &perturbed.w_parallel
                             : &perturbed.w_angle;
    *w = std::nextafter(*w, 2.0);
    EXPECT_NE(distance::NeighborhoodCacheKey(store, perturbed, kEps), key)
        << "distance weight " << which;
  }
  // Directed flag.
  {
    distance::SegmentDistanceConfig undirected = config;
    undirected.directed = false;
    EXPECT_NE(distance::NeighborhoodCacheKey(store, undirected, kEps), key);
  }
  // ε, one ULP.
  EXPECT_NE(distance::NeighborhoodCacheKey(store, config,
                                           std::nextafter(kEps, 1e9)),
            key);
}

TEST(NeighborCacheFileTest, ColdMissThenWarmHitServesIdenticalLists) {
  const std::string dir = CacheDir("miss_then_hit");
  const traj::SegmentStore store(BaseSegments());
  const distance::SegmentDistance dist;
  const BruteForceNeighborhood base(store, dist);
  common::ThreadPool& pool = common::SharedPool(2);

  auto cold = FileNeighborhoodCache::Create(base, store, dist.config(), kEps,
                                            dir, pool);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE((*cold)->loaded_from_file());
  EXPECT_TRUE(std::filesystem::exists((*cold)->file_path()));

  auto warm = FileNeighborhoodCache::Create(base, store, dist.config(), kEps,
                                            dir, pool);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE((*warm)->loaded_from_file());
  EXPECT_EQ((*warm)->key(), (*cold)->key());
  EXPECT_EQ((*warm)->size(), store.size());

  // Every query method, on both sides, equals the base provider exactly.
  const auto expect = base.AllNeighbors(kEps, pool);
  std::vector<size_t> all_queries(store.size());
  for (size_t i = 0; i < store.size(); ++i) all_queries[i] = i;
  for (const FileNeighborhoodCache* cache : {cold->get(), warm->get()}) {
    EXPECT_EQ(cache->AllNeighbors(kEps, pool), expect);
    EXPECT_EQ(cache->NeighborsBatch(all_queries, kEps, pool), expect);
    const auto sizes = cache->AllNeighborhoodSizes(kEps, pool);
    ASSERT_EQ(sizes.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(sizes[i], expect[i].size());
      EXPECT_EQ(cache->Neighbors(i, kEps), expect[i]);
    }
  }

  // Perturbing a key input routes to a DIFFERENT file: the stale file stays,
  // a second one appears.
  auto segments = BaseSegments();
  const geom::Segment& s = segments[0];
  segments[0] =
      geom::Segment(s.start(), s.end(), s.id(), s.trajectory_id(), 3.0);
  const traj::SegmentStore perturbed(segments);
  const BruteForceNeighborhood perturbed_base(perturbed, dist);
  auto other = FileNeighborhoodCache::Create(perturbed_base, perturbed,
                                             dist.config(), kEps, dir, pool);
  ASSERT_TRUE(other.ok()) << other.status().ToString();
  EXPECT_FALSE((*other)->loaded_from_file());
  EXPECT_NE((*other)->key(), (*cold)->key());
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 2u);
}

TEST(NeighborCacheFileTest, LoadFailsWithTypedStatusOnEveryBadFile) {
  const std::string dir = CacheDir("typed_errors");
  const traj::SegmentStore store(BaseSegments());
  const distance::SegmentDistance dist;
  const BruteForceNeighborhood base(store, dist);
  common::ThreadPool& pool = common::SharedPool(1);
  const uint64_t key = distance::NeighborhoodCacheKey(store, dist.config(),
                                                      kEps);
  const std::string path = NeighborCacheFilePath(dir, key);

  // Missing file → NotFound.
  EXPECT_EQ(LoadNeighborCacheFileHeader(path, key, store.size(), kEps)
                .status()
                .code(),
            common::StatusCode::kNotFound);

  ASSERT_TRUE(WriteNeighborCacheFile(path, key, base, kEps, pool).ok());
  ASSERT_TRUE(
      LoadNeighborCacheFileHeader(path, key, store.size(), kEps).ok());

  // Stale expectations → FailedPrecondition, each key component separately.
  EXPECT_EQ(LoadNeighborCacheFileHeader(path, key + 1, store.size(), kEps)
                .status()
                .code(),
            common::StatusCode::kFailedPrecondition);
  EXPECT_EQ(LoadNeighborCacheFileHeader(path, key, store.size() + 1, kEps)
                .status()
                .code(),
            common::StatusCode::kFailedPrecondition);
  EXPECT_EQ(LoadNeighborCacheFileHeader(path, key, store.size(),
                                        std::nextafter(kEps, 1e9))
                .status()
                .code(),
            common::StatusCode::kFailedPrecondition);

  // Truncation → IOError: drop the trailing sentinel.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 4);
  EXPECT_EQ(LoadNeighborCacheFileHeader(path, key, store.size(), kEps)
                .status()
                .code(),
            common::StatusCode::kIOError);
  // Shorter than even the fixed header → IOError too.
  std::filesystem::resize_file(path, 16);
  EXPECT_EQ(LoadNeighborCacheFileHeader(path, key, store.size(), kEps)
                .status()
                .code(),
            common::StatusCode::kIOError);

  // Corrupt magic → InvalidArgument.
  ASSERT_TRUE(WriteNeighborCacheFile(path, key, base, kEps, pool).ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    const uint32_t bad = 0xDEADBEEFu;
    f.write(reinterpret_cast<const char*>(&bad), sizeof(bad));
  }
  EXPECT_EQ(LoadNeighborCacheFileHeader(path, key, store.size(), kEps)
                .status()
                .code(),
            common::StatusCode::kInvalidArgument);

  // Create() must recover from ALL of the above by recomputing: hand it the
  // corrupt file and expect a fresh (cold) cache with correct lists.
  auto recovered = FileNeighborhoodCache::Create(base, store, dist.config(),
                                                 kEps, dir, pool);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE((*recovered)->loaded_from_file());
  EXPECT_EQ((*recovered)->AllNeighbors(kEps, pool),
            base.AllNeighbors(kEps, pool));
  // ... and the rewrite healed the file for the next run.
  auto healed = FileNeighborhoodCache::Create(base, store, dist.config(),
                                              kEps, dir, pool);
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE((*healed)->loaded_from_file());
}

TEST(NeighborCacheFileTest, EngineRunsAreByteIdenticalColdWarmAndUncached) {
  const std::string dir = CacheDir("engine");
  const traj::TrajectoryDatabase db =
      datagen::GenerateHurricanes(datagen::HurricaneConfig{});
  core::DbscanGroupOptions group;
  group.eps = 0.94;
  group.min_lns = 5.0;
  core::SweepRepresentativeOptions reps;
  reps.min_lns = group.min_lns;
  const auto engine = core::TraclusEngine::Builder()
                          .UseMdlPartitioning()
                          .UseDbscanGrouping(group)
                          .UseSweepRepresentatives(reps)
                          .WithNeighborCache(dir)
                          .Build();
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const auto plain = core::TraclusEngine::Builder()
                         .UseMdlPartitioning()
                         .UseDbscanGrouping(group)
                         .UseSweepRepresentatives(reps)
                         .Build();
  ASSERT_TRUE(plain.ok());

  const auto expect = plain->Run(db);
  ASSERT_TRUE(expect.ok());
  const auto cold = engine->Run(db);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  const auto warm = engine->Run(db);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  for (const auto* run : {&cold, &warm}) {
    EXPECT_EQ((*run)->clustering.labels, expect->clustering.labels);
    EXPECT_EQ((*run)->clustering.num_noise, expect->clustering.num_noise);
    ASSERT_EQ((*run)->representatives.size(), expect->representatives.size());
    for (size_t r = 0; r < expect->representatives.size(); ++r) {
      ASSERT_EQ((*run)->representatives[r].size(),
                expect->representatives[r].size());
      for (size_t p = 0; p < expect->representatives[r].size(); ++p) {
        EXPECT_EQ((*run)->representatives[r][p],
                  expect->representatives[r][p]);
      }
    }
  }

  // The warm run reused the cold run's file: exactly one file in the
  // directory after both runs.
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);

  // A per-run context override beats the builder default off-switch: an
  // empty engine with ctx.neighbor_cache_dir set also hits the same file.
  core::RunContext ctx;
  ctx.neighbor_cache_dir = dir;
  const auto via_ctx = plain->Run(db, ctx);
  ASSERT_TRUE(via_ctx.ok());
  EXPECT_EQ(via_ctx->clustering.labels, expect->clustering.labels);
}

}  // namespace
}  // namespace traclus::cluster
