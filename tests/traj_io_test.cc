// Tests for the trajectory data model, CSV IO, and the SVG writer.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "traj/csv_io.h"
#include "traj/svg_writer.h"
#include "traj/trajectory.h"
#include "traj/trajectory_database.h"

namespace traclus::traj {
namespace {

using geom::Point;

Trajectory MakeTrajectory(geom::TrajectoryId id,
                          std::initializer_list<Point> pts) {
  Trajectory tr(id);
  for (const auto& p : pts) tr.Add(p);
  return tr;
}

TEST(TrajectoryTest, LengthIsPolylineLength) {
  const auto tr = MakeTrajectory(0, {Point(0, 0), Point(3, 4), Point(3, 14)});
  EXPECT_DOUBLE_EQ(tr.Length(), 15.0);
}

TEST(TrajectoryTest, SubTrajectoryInclusive) {
  const auto tr =
      MakeTrajectory(5, {Point(0, 0), Point(1, 0), Point(2, 0), Point(3, 0)});
  const auto sub = tr.SubTrajectory(1, 2);
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub[0], Point(1, 0));
  EXPECT_EQ(sub[1], Point(2, 0));
  EXPECT_EQ(sub.id(), 5);
}

TEST(TrajectoryTest, RawSegmentsSkipDuplicates) {
  const auto tr = MakeTrajectory(
      3, {Point(0, 0), Point(0, 0), Point(1, 0), Point(2, 0)});
  const auto segs = tr.RawSegments();
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].trajectory_id(), 3);
}

TEST(TrajectoryDatabaseTest, AutoAssignsSequentialIds) {
  TrajectoryDatabase db;
  Trajectory a;  // id = -1.
  a.Add(Point(0, 0));
  EXPECT_EQ(db.Add(std::move(a)), 0);
  Trajectory b;
  b.Add(Point(1, 1));
  EXPECT_EQ(db.Add(std::move(b)), 1);
  Trajectory c(77);
  c.Add(Point(2, 2));
  EXPECT_EQ(db.Add(std::move(c)), 77);  // Explicit id preserved.
}

TEST(TrajectoryDatabaseTest, StatsAggregateCorrectly) {
  TrajectoryDatabase db;
  db.Add(MakeTrajectory(0, {Point(0, 0), Point(10, 0)}));
  db.Add(MakeTrajectory(
      1, {Point(0, 5), Point(1, 5), Point(2, 8), Point(3, 5)}));
  const DatabaseStats st = db.Stats();
  EXPECT_EQ(st.num_trajectories, 2u);
  EXPECT_EQ(st.num_points, 6u);
  EXPECT_EQ(st.min_length, 2u);
  EXPECT_EQ(st.max_length, 4u);
  EXPECT_DOUBLE_EQ(st.mean_length, 3.0);
  EXPECT_DOUBLE_EQ(st.bounds.hi(0), 10.0);
  EXPECT_DOUBLE_EQ(st.bounds.hi(1), 8.0);
}

TEST(CsvTest, ParseBasic2D) {
  const auto result = ParseCsv(
      "# comment\n"
      "0,1.5,2.5\n"
      "0,2.5,3.5\n"
      "1,0,0\n"
      "1,1,1\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TrajectoryDatabase& db = *result;
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db[0].size(), 2u);
  EXPECT_EQ(db[0][0], Point(1.5, 2.5));
  EXPECT_EQ(db[1].id(), 1);
}

TEST(CsvTest, ParseWeightColumn) {
  const auto result = ParseCsv("3,0,0,2.5\n3,1,0,2.5\n");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ((*result)[0].weight(), 2.5);
}

TEST(CsvTest, ParseZAndWeightColumns) {
  const auto result = ParseCsv("0,1,2,3,1.5\n0,2,3,4,1.5\n");
  ASSERT_TRUE(result.ok());
  const auto& tr = (*result)[0];
  EXPECT_EQ(tr.dims(), 3);
  EXPECT_EQ(tr[0], Point(1, 2, 3));
  EXPECT_DOUBLE_EQ(tr.weight(), 1.5);
}

TEST(CsvTest, HeaderRowTolerated) {
  const auto result = ParseCsv("trajectory_id,x,y\n0,1,2\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(CsvTest, RejectsMalformedRows) {
  EXPECT_FALSE(ParseCsv("0,1\n").ok());            // Too few fields.
  EXPECT_FALSE(ParseCsv("0,1,2\nx,1,2\n").ok());   // Bad id past header.
  EXPECT_FALSE(ParseCsv("0,abc,2\n").ok());        // Bad coordinate.
  EXPECT_FALSE(ParseCsv("0,1,2,zz\n").ok());       // Bad weight.
}

TEST(CsvTest, ErrorsNameTheOffendingLine) {
  const auto bad = ParseCsv("0,1,2\n0,3,4\n1,oops,6\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("line 3"), std::string::npos)
      << bad.status().ToString();
}

TEST(CsvTest, RejectsNonContiguousTrajectoryRows) {
  // Id 0 reappears after id 1 started: silently accepting it would create
  // two trajectories with the same id and corrupt |PTR(C)| downstream.
  const auto result = ParseCsv("0,1,2\n0,3,4\n1,5,6\n1,7,8\n0,9,9\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("line 5"), std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("contiguous"), std::string::npos);
}

TEST(CsvTest, UnweightedThreeDRoundTripsThroughFile) {
  // WriteCsv must emit the weight column for 3-D data even when every weight
  // is 1.0 — a 4-field `id,x,y,z` row reads back as 2-D with z as weight.
  TrajectoryDatabase db;
  Trajectory tr(0);
  tr.Add(geom::Point(1.0, 2.0, 3.0));
  tr.Add(geom::Point(4.0, 5.0, 6.0));
  db.Add(std::move(tr));
  const std::string path = "/tmp/traclus_3d_roundtrip.csv";
  ASSERT_TRUE(WriteCsv(db, path).ok());
  const auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].dims(), 3);
  EXPECT_DOUBLE_EQ((*loaded)[0].weight(), 1.0);
  EXPECT_NEAR((*loaded)[0].points()[0].z(), 3.0, 1e-9);
}

TEST(CsvTest, WriteRejectsMixedDimensionalityDatabase) {
  // WriteCsv mirrors ParseCsv's contract: a mixed 2-D/3-D database is a typed
  // error, not a file with silently dropped (or garbage) z values.
  TrajectoryDatabase db;
  Trajectory flat(0);
  flat.Add(geom::Point(0.0, 1.0));
  flat.Add(geom::Point(2.0, 3.0));
  db.Add(std::move(flat));
  Trajectory solid(1);
  solid.Add(geom::Point(0.0, 1.0, 2.0));
  solid.Add(geom::Point(3.0, 4.0, 5.0));
  db.Add(std::move(solid));
  const auto st = WriteCsv(db, "/tmp/traclus_mixed_dims.csv");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), common::StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsMixedDimensionality) {
  // A 3-D row (z + weight) in a file that started 2-D used to assert deep in
  // Trajectory::Add; now it is a typed error naming the line.
  const auto result = ParseCsv("0,1,2\n0,3,4\n1,5,6,7,1.0\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("dimensionality"),
            std::string::npos);
}

TEST(CsvTest, EmptyInputYieldsEmptyDatabase) {
  const auto result = ParseCsv("");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(CsvTest, RoundTripThroughFile) {
  TrajectoryDatabase db;
  auto tr0 = MakeTrajectory(0, {Point(0.125, 2), Point(3, 4.5)});
  tr0.set_weight(2.0);
  db.Add(std::move(tr0));
  db.Add(MakeTrajectory(1, {Point(-1, -2), Point(5, 6), Point(7, 8)}));

  const std::string path =
      (std::filesystem::temp_directory_path() / "traclus_csv_roundtrip.csv")
          .string();
  ASSERT_TRUE(WriteCsv(db, path).ok());
  const auto result = ReadCsv(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TrajectoryDatabase& rt = *result;
  ASSERT_EQ(rt.size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    ASSERT_EQ(rt[i].size(), db[i].size());
    EXPECT_DOUBLE_EQ(rt[i].weight(), db[i].weight());
    for (size_t j = 0; j < db[i].size(); ++j) {
      EXPECT_EQ(rt[i][j], db[i][j]);
    }
  }
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  const auto result = ReadCsv("/nonexistent/path/to/file.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kIOError);
}

TEST(SvgWriterTest, ProducesWellFormedDocument) {
  geom::BBox world;
  world.Extend(Point(0, 0));
  world.Extend(Point(100, 50));
  SvgWriter svg(world);
  svg.AddTrajectory(
      MakeTrajectory(0, {Point(0, 0), Point(50, 25), Point(100, 0)}),
      "#00ff00", 1.0);
  svg.AddSegment(geom::Segment(Point(10, 10), Point(20, 20)), "#ff0000", 2.0);
  svg.AddLabel(Point(50, 40), "cluster 0");
  const std::string doc = svg.ToString();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_NE(doc.find("<polyline"), std::string::npos);
  EXPECT_NE(doc.find("<line"), std::string::npos);
  EXPECT_NE(doc.find("cluster 0"), std::string::npos);
}

TEST(SvgWriterTest, DatabaseRendersOnePolylinePerTrajectory) {
  geom::BBox world;
  world.Extend(Point(0, 0));
  world.Extend(Point(10, 10));
  TrajectoryDatabase db;
  db.Add(MakeTrajectory(0, {Point(0, 0), Point(1, 1)}));
  db.Add(MakeTrajectory(1, {Point(2, 2), Point(3, 3)}));
  db.Add(MakeTrajectory(2, {Point(5, 5)}));  // Single point: skipped.
  SvgWriter svg(world);
  svg.AddDatabase(db);
  const std::string doc = svg.ToString();
  size_t count = 0;
  for (size_t pos = doc.find("<polyline"); pos != std::string::npos;
       pos = doc.find("<polyline", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(SvgWriterTest, SavesToDisk) {
  geom::BBox world;
  world.Extend(Point(0, 0));
  world.Extend(Point(1, 1));
  SvgWriter svg(world);
  const std::string path =
      (std::filesystem::temp_directory_path() / "traclus_svg_test.svg")
          .string();
  ASSERT_TRUE(svg.Save(path).ok());
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace traclus::traj
