// Deeper invariants of the TRACLUS distance function, checked against an
// independently-coded reference implementation of Definitions 1-3 and against
// geometric transformations (rotation, scaling, translation).

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "distance/segment_distance.h"
#include "geom/vector_ops.h"

namespace traclus::distance {
namespace {

using geom::Point;
using geom::Segment;

// ---------- Independent reference implementation (deliberately naive).
// ----------

// Projection of p onto the line through (s, e), computed coordinate-wise.
Point RefProject(const Point& p, const Point& s, const Point& e) {
  const double vx = e.x() - s.x();
  const double vy = e.y() - s.y();
  const double denom = vx * vx + vy * vy;
  if (denom == 0.0) return s;
  const double u = ((p.x() - s.x()) * vx + (p.y() - s.y()) * vy) / denom;
  return Point(s.x() + u * vx, s.y() + u * vy);
}

DistanceComponents RefComponents(const Segment& longer, const Segment& shorter,
                                 bool directed) {
  DistanceComponents c;
  const Point ps = RefProject(shorter.start(), longer.start(), longer.end());
  const Point pe = RefProject(shorter.end(), longer.start(), longer.end());
  const double l_perp1 = geom::Distance(shorter.start(), ps);
  const double l_perp2 = geom::Distance(shorter.end(), pe);
  c.perpendicular = (l_perp1 + l_perp2 == 0.0)
                        ? 0.0
                        : (l_perp1 * l_perp1 + l_perp2 * l_perp2) /
                              (l_perp1 + l_perp2);
  const double l_par1 = std::min(geom::Distance(ps, longer.start()),
                                 geom::Distance(ps, longer.end()));
  const double l_par2 = std::min(geom::Distance(pe, longer.start()),
                                 geom::Distance(pe, longer.end()));
  c.parallel = std::min(l_par1, l_par2);

  const double len = shorter.Length();
  if (len == 0.0) {
    c.angle = 0.0;
    return c;
  }
  const double dot = (longer.end().x() - longer.start().x()) *
                         (shorter.end().x() - shorter.start().x()) +
                     (longer.end().y() - longer.start().y()) *
                         (shorter.end().y() - shorter.start().y());
  const double cos_t =
      std::clamp(dot / (longer.Length() * len), -1.0, 1.0);
  const double sin_t = std::sqrt(1.0 - cos_t * cos_t);
  if (directed && cos_t <= 0.0) {
    c.angle = len;
  } else {
    c.angle = len * sin_t;
  }
  return c;
}

Segment RandomSegment(common::Rng* rng, double world = 50,
                      double max_len = 15) {
  const Point s(rng->Uniform(-world, world), rng->Uniform(-world, world));
  const double ang = rng->Uniform(0, 2 * M_PI);
  const double len = rng->Uniform(0.01, max_len);
  return Segment(s, Point(s.x() + len * std::cos(ang),
                          s.y() + len * std::sin(ang)));
}

class DistanceRefTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistanceRefTest, ComponentsMatchNaiveReference) {
  common::Rng rng(GetParam());
  for (const bool directed : {true, false}) {
    SegmentDistanceConfig cfg;
    cfg.directed = directed;
    const SegmentDistance dist(cfg);
    for (int i = 0; i < 200; ++i) {
      Segment a = RandomSegment(&rng);
      Segment b = RandomSegment(&rng);
      // The reference needs canonical (longer, shorter) roles.
      if (a.Length() < b.Length()) std::swap(a, b);
      const DistanceComponents got = dist.Components(a, b);
      const DistanceComponents want = RefComponents(a, b, directed);
      EXPECT_NEAR(got.perpendicular, want.perpendicular, 1e-9);
      EXPECT_NEAR(got.parallel, want.parallel, 1e-9);
      EXPECT_NEAR(got.angle, want.angle, 1e-9);
    }
  }
}

TEST_P(DistanceRefTest, RigidMotionInvariance) {
  // dist is defined by relative geometry only: invariant under rotation +
  // translation of both segments together.
  common::Rng rng(GetParam() + 50);
  const SegmentDistance dist;
  for (int i = 0; i < 100; ++i) {
    const Segment a = RandomSegment(&rng);
    const Segment b = RandomSegment(&rng);
    const double phi = rng.Uniform(0, 2 * M_PI);
    const Point t(rng.Uniform(-100, 100), rng.Uniform(-100, 100));
    auto move = [&](const Point& p) {
      return Point(std::cos(phi) * p.x() - std::sin(phi) * p.y() + t.x(),
                   std::sin(phi) * p.x() + std::cos(phi) * p.y() + t.y());
    };
    const Segment a2(move(a.start()), move(a.end()));
    const Segment b2(move(b.start()), move(b.end()));
    EXPECT_NEAR(dist(a, b), dist(a2, b2), 1e-7);
  }
}

TEST_P(DistanceRefTest, ScalingCovariance) {
  // All three components have units of length: dist(s·a, s·b) = s · dist(a, b).
  common::Rng rng(GetParam() + 99);
  const SegmentDistance dist;
  for (int i = 0; i < 100; ++i) {
    const Segment a = RandomSegment(&rng);
    const Segment b = RandomSegment(&rng);
    const double s = rng.Uniform(0.1, 20.0);
    const Segment a2(a.start() * s, a.end() * s);
    const Segment b2(b.start() * s, b.end() * s);
    EXPECT_NEAR(dist(a2, b2), s * dist(a, b), 1e-6 * std::max(1.0, s));
  }
}

TEST_P(DistanceRefTest, PerpendicularIsLehmerMeanBounded) {
  // Lehmer mean of order 2 lies between the arithmetic mean and the max of
  // the two projection distances.
  common::Rng rng(GetParam() + 123);
  const SegmentDistance dist;
  for (int i = 0; i < 200; ++i) {
    Segment a = RandomSegment(&rng);
    Segment b = RandomSegment(&rng);
    if (a.Length() < b.Length()) std::swap(a, b);
    const double l1 = geom::PointToLineDistance(b.start(), a.start(), a.end());
    const double l2 = geom::PointToLineDistance(b.end(), a.start(), a.end());
    const double perp = dist.Perpendicular(a, b);
    EXPECT_GE(perp, (l1 + l2) / 2.0 - 1e-9);
    EXPECT_LE(perp, std::max(l1, l2) + 1e-9);
  }
}

TEST_P(DistanceRefTest, AngleBoundedByShorterLength) {
  common::Rng rng(GetParam() + 321);
  const SegmentDistance dist;
  for (int i = 0; i < 200; ++i) {
    const Segment a = RandomSegment(&rng);
    const Segment b = RandomSegment(&rng);
    const double shorter = std::min(a.Length(), b.Length());
    EXPECT_LE(dist.Angle(a, b), shorter + 1e-9);
  }
}

TEST_P(DistanceRefTest, UndirectedAngleNeverExceedsDirected) {
  common::Rng rng(GetParam() + 777);
  SegmentDistanceConfig undirected_cfg;
  undirected_cfg.directed = false;
  const SegmentDistance directed;
  const SegmentDistance undirected(undirected_cfg);
  for (int i = 0; i < 200; ++i) {
    const Segment a = RandomSegment(&rng);
    const Segment b = RandomSegment(&rng);
    EXPECT_LE(undirected.Angle(a, b), directed.Angle(a, b) + 1e-9);
  }
}

TEST_P(DistanceRefTest, ReversingShorterFlipsDirectedAngleRegime) {
  // sin(θ) is shared by θ and 180°−θ, so the undirected angle is reversal-
  // invariant, while the directed one switches to the ‖Lj‖ regime.
  common::Rng rng(GetParam() + 888);
  SegmentDistanceConfig undirected_cfg;
  undirected_cfg.directed = false;
  const SegmentDistance undirected(undirected_cfg);
  for (int i = 0; i < 100; ++i) {
    Segment a = RandomSegment(&rng);
    Segment b = RandomSegment(&rng);
    if (a.Length() < b.Length()) std::swap(a, b);
    EXPECT_NEAR(undirected.Angle(a, b), undirected.Angle(a, b.Reversed()),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceRefTest,
                         ::testing::Values(10u, 20u, 30u, 40u, 50u));

TEST(DistanceDegenerateTest, BothSegmentsDegenerate) {
  const SegmentDistance dist;
  const Segment a(Point(1, 1), Point(1, 1));
  const Segment b(Point(4, 5), Point(4, 5));
  // Point-to-point: perpendicular collapses to the Euclidean distance and
  // parallel to 0 (projection onto a point is the point itself).
  const DistanceComponents c = dist.Components(a, b);
  EXPECT_TRUE(std::isfinite(c.perpendicular));
  EXPECT_TRUE(std::isfinite(c.parallel));
  EXPECT_DOUBLE_EQ(c.angle, 0.0);
  EXPECT_GT(dist(a, b), 0.0);
}

TEST(DistanceDegenerateTest, NearlyParallelNumericalStability) {
  // cos θ can drift outside [−1, 1] for near-parallel long segments; the
  // clamp must keep sin θ real.
  const SegmentDistance dist;
  const Segment a(Point(0, 0), Point(1e6, 1));
  const Segment b(Point(0, 1), Point(1e6, 2));
  const double angle = dist.Angle(a, b);
  EXPECT_TRUE(std::isfinite(angle));
  EXPECT_GE(angle, 0.0);
}

}  // namespace
}  // namespace traclus::distance
