// Tests for the OPTICS adaptation to line segments (Appendix D, §7.1).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/dbscan_segments.h"
#include "cluster/neighborhood.h"
#include "cluster/optics_segments.h"
#include "traj/segment_store.h"
#include "common/rng.h"
#include "distance/segment_distance.h"

namespace traclus::cluster {
namespace {

using distance::SegmentDistance;
using geom::Point;
using geom::Segment;

std::vector<Segment> Bundle(double x0, double y0, int count,
                            geom::TrajectoryId tid0, double spacing = 0.3) {
  std::vector<Segment> out;
  for (int i = 0; i < count; ++i) {
    out.emplace_back(Point(x0, y0 + i * spacing),
                     Point(x0 + 10.0, y0 + i * spacing), -1, tid0 + i);
  }
  return out;
}

std::vector<Segment> WithIds(std::vector<Segment> segs) {
  for (size_t i = 0; i < segs.size(); ++i) {
    segs[i].set_id(static_cast<geom::SegmentId>(i));
  }
  return segs;
}

OpticsOptions Options(double eps, double min_lns) {
  OpticsOptions opt;
  opt.eps = eps;
  opt.min_lns = min_lns;
  return opt;
}

TEST(OpticsTest, OrderingIsAPermutation) {
  common::Rng rng(3);
  std::vector<Segment> segs;
  for (int i = 0; i < 60; ++i) {
    const Point s(rng.Uniform(0, 50), rng.Uniform(0, 50));
    segs.emplace_back(s, Point(s.x() + rng.Uniform(-5, 5),
                               s.y() + rng.Uniform(-5, 5)),
                      i, i % 6);
  }
  const SegmentDistance dist;
  const traj::SegmentStore store(std::move(segs));
  const BruteForceNeighborhood provider(store, dist);
  const auto result = OpticsSegments(store, dist, provider, Options(5.0, 3));
  ASSERT_EQ(result.ordering.size(), store.size());
  std::vector<size_t> sorted = result.ordering;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  EXPECT_EQ(result.reachability.size(), store.size());
  EXPECT_EQ(result.core_distance.size(), store.size());
}

TEST(OpticsTest, DenseBundleHasLowReachability) {
  traj::SegmentStore segs(WithIds(Bundle(0, 0, 8, 0)));
  const SegmentDistance dist;
  const BruteForceNeighborhood provider(segs, dist);
  const auto result = OpticsSegments(segs, dist, provider, Options(5.0, 3));
  // All but the first processed segment must be reachable well within ε.
  int finite = 0;
  for (const double r : result.reachability) {
    if (r != kUndefinedReachability) {
      EXPECT_LE(r, 5.0);
      ++finite;
    }
  }
  EXPECT_EQ(finite, 7);  // Everything except the walk start.
}

TEST(OpticsTest, CoreDistanceIsMinLnsThNeighborDistance) {
  // Evenly spaced parallel segments: core distance of an edge segment at
  // MinLns = 3 is the distance to its 2nd-nearest other segment.
  traj::SegmentStore segs(WithIds(Bundle(0, 0, 5, 0, /*spacing=*/1.0)));
  const SegmentDistance dist;
  const BruteForceNeighborhood provider(segs, dist);
  const auto result = OpticsSegments(segs, dist, provider, Options(10.0, 3));
  // Find the entry for segment 0 (y = 0); its neighbors are at dy = 1, 2, 3, 4.
  for (size_t k = 0; k < result.ordering.size(); ++k) {
    if (result.ordering[k] == 0) {
      EXPECT_NEAR(result.core_distance[k], 2.0, 1e-9);
    }
  }
}

TEST(OpticsTest, SparseSegmentsHaveUndefinedCoreDistance) {
  const traj::SegmentStore segs(WithIds({
      Segment(Point(0, 0), Point(10, 0), -1, 0),
      Segment(Point(0, 100), Point(10, 100), -1, 1),
  }));
  const SegmentDistance dist;
  const BruteForceNeighborhood provider(segs, dist);
  const auto result = OpticsSegments(segs, dist, provider, Options(5.0, 3));
  for (const double c : result.core_distance) {
    EXPECT_EQ(c, kUndefinedReachability);
  }
}

TEST(OpticsTest, ExtractionMatchesDbscanClusterCount) {
  // Ankerst et al.: extracting at eps_cut = generating ε reproduces DBSCAN's
  // density-connected sets (border-assignment may differ slightly; cluster
  // counts and core memberships must match).
  auto segs = Bundle(0, 0, 6, 0);
  auto far = Bundle(0, 100, 6, 10);
  segs.insert(segs.end(), far.begin(), far.end());
  const traj::SegmentStore store(WithIds(std::move(segs)));
  const SegmentDistance dist;
  const BruteForceNeighborhood provider(store, dist);

  const auto optics = OpticsSegments(store, dist, provider, Options(3.0, 3));
  const auto extracted = ExtractDbscanClustering(store, optics, 3.0, 3);

  DbscanOptions dopt;
  dopt.eps = 3.0;
  dopt.min_lns = 3;
  const auto dbscan = DbscanSegments(store, provider, dopt);

  EXPECT_EQ(extracted.clusters.size(), dbscan.clusters.size());
  EXPECT_EQ(extracted.num_noise, dbscan.num_noise);
}

TEST(OpticsTest, ExtractionAppliesCardinalityFilter) {
  auto segs = Bundle(0, 0, 6, 0);
  for (auto& s : segs) s.set_trajectory_id(3);  // Single trajectory.
  const traj::SegmentStore store(WithIds(std::move(segs)));
  const SegmentDistance dist;
  const BruteForceNeighborhood provider(store, dist);
  const auto optics = OpticsSegments(store, dist, provider, Options(3.0, 3));
  const auto extracted = ExtractDbscanClustering(store, optics, 3.0, 3);
  EXPECT_TRUE(extracted.clusters.empty());
  EXPECT_EQ(extracted.num_noise, store.size());
}

TEST(OpticsTest, AppendixDPairwiseDistanceUnboundedForSegments) {
  // Appendix D, Fig. 25: for POINTS, any two members of an ε-neighborhood are
  // within 2ε of each other. For SEGMENTS this bound fails: two long segments
  // can both be within ε of a short core segment yet arbitrarily far apart
  // (the parallel/angle components see very different geometry).
  const SegmentDistance dist;
  // Short core segment at the origin; two long anti-parallel segments start
  // next to it and run in opposite directions. Because the core is short, its
  // angle distance to both is tiny (§4.1.3: no directional strength), so both
  // are ε-neighbors — yet their mutual angle distance is the full 60-unit
  // length of the shorter one.
  const Segment core(Point(0, 0), Point(1, 0), 0, 0);
  const Segment east(Point(0, 0.3), Point(60, 0.3), 1, 1);
  const Segment west(Point(1, -0.3), Point(-59, -0.3), 2, 2);
  const double eps = 2.0;
  // Both are ε-neighbors of the core segment...
  EXPECT_LE(dist(core, east), eps);
  EXPECT_LE(dist(core, west), eps);
  // ...but their mutual distance is far beyond 2ε.
  EXPECT_GT(dist(east, west), 2 * eps + 10.0);
}

TEST(OpticsTest, DeterministicAcrossRuns) {
  common::Rng rng(17);
  std::vector<Segment> segs;
  for (int i = 0; i < 80; ++i) {
    const Point s(rng.Uniform(0, 60), rng.Uniform(0, 60));
    segs.emplace_back(s, Point(s.x() + rng.Uniform(-6, 6),
                               s.y() + rng.Uniform(-6, 6)),
                      i, i % 8);
  }
  const SegmentDistance dist;
  const traj::SegmentStore store(std::move(segs));
  const BruteForceNeighborhood provider(store, dist);
  const auto a = OpticsSegments(store, dist, provider, Options(5.0, 4));
  const auto b = OpticsSegments(store, dist, provider, Options(5.0, 4));
  EXPECT_EQ(a.ordering, b.ordering);
  EXPECT_EQ(a.reachability, b.reachability);
}

}  // namespace
}  // namespace traclus::cluster
