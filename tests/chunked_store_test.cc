// Tests for traj::ChunkedSegmentStore: every chunk is a bit-exact slice of
// the monolithic SegmentStore over the same segments (all invariant columns),
// the spill/fault round trip in bounded mode preserves those bits, the LRU
// reader cache never exceeds its residency cap, and Merge() reproduces the
// eager freeze exactly. Also pins the SegmentStore::FromSegments factory that
// replaces the deprecated Group(vector) implicit freeze.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "common/status.h"
#include "geom/segment.h"
#include "traj/chunked_store.h"
#include "traj/segment_store.h"

namespace traclus::traj {
namespace {

using common::StatusCode;

std::vector<geom::Segment> RandomSegments(size_t n, uint64_t seed,
                                          int dims = 2) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(-50.0, 50.0);
  std::uniform_real_distribution<double> weight(0.5, 3.0);
  std::vector<geom::Segment> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const geom::Point s = dims == 3
                              ? geom::Point(coord(rng), coord(rng), coord(rng))
                              : geom::Point(coord(rng), coord(rng));
    const geom::Point e = dims == 3
                              ? geom::Point(coord(rng), coord(rng), coord(rng))
                              : geom::Point(coord(rng), coord(rng));
    out.emplace_back(s, e, static_cast<geom::SegmentId>(i),
                     static_cast<geom::TrajectoryId>(i / 7), weight(rng));
  }
  return out;
}

// Every column of `chunk` must equal the monolithic store's columns over
// [base, base + chunk.size()) bit-for-bit.
void ExpectChunkIsExactSlice(const SegmentStore& chunk, size_t base,
                             const SegmentStore& mono) {
  ASSERT_LE(base + chunk.size(), mono.size());
  ASSERT_EQ(chunk.dims(), mono.dims());
  for (size_t i = 0; i < chunk.size(); ++i) {
    const size_t g = base + i;
    EXPECT_EQ(chunk.length(i), mono.length(g));
    EXPECT_EQ(chunk.squared_length(i), mono.squared_length(g));
    EXPECT_EQ(chunk.half_length(i), mono.half_length(g));
    EXPECT_EQ(chunk.inv_length(i), mono.inv_length(g));
    EXPECT_EQ(chunk.weight(i), mono.weight(g));
    EXPECT_EQ(chunk.id(i), mono.id(g));
    EXPECT_EQ(chunk.trajectory_id(i), mono.trajectory_id(g));
    for (int d = 0; d < mono.dims(); ++d) {
      EXPECT_EQ(chunk.direction(i)[d], mono.direction(g)[d]);
      EXPECT_EQ(chunk.unit_direction(i)[d], mono.unit_direction(g)[d]);
      EXPECT_EQ(chunk.midpoint(i)[d], mono.midpoint(g)[d]);
      EXPECT_EQ(chunk.segment(i).start()[d], mono.segment(g).start()[d]);
      EXPECT_EQ(chunk.segment(i).end()[d], mono.segment(g).end()[d]);
      EXPECT_EQ(chunk.bbox(i).lo(d), mono.bbox(g).lo(d));
      EXPECT_EQ(chunk.bbox(i).hi(d), mono.bbox(g).hi(d));
    }
    for (int d = 0; d < geom::kMaxDims; ++d) {
      EXPECT_EQ(chunk.start_coords(d)[i], mono.start_coords(d)[g]);
      EXPECT_EQ(chunk.end_coords(d)[i], mono.end_coords(d)[g]);
      EXPECT_EQ(chunk.direction_coords(d)[i], mono.direction_coords(d)[g]);
      EXPECT_EQ(chunk.midpoint_coords(d)[i], mono.midpoint_coords(d)[g]);
    }
  }
}

void ExpectStoresIdentical(const SegmentStore& a, const SegmentStore& b) {
  ASSERT_EQ(a.size(), b.size());
  ExpectChunkIsExactSlice(a, 0, b);
}

// ---------------------------------------------------------------------------
// Chunk layout and catalog.
// ---------------------------------------------------------------------------

TEST(ChunkedStoreTest, ChunksAreBitExactSlicesOfTheMonolithicStore) {
  const auto segments = RandomSegments(233, /*seed=*/42);
  const SegmentStore mono(segments);

  for (const size_t cap : {1u, 7u, 64u, 233u, 1024u, 0u}) {
    SCOPED_TRACE(testing::Message() << "chunk_capacity " << cap);
    ChunkedStoreOptions options;
    options.chunk_capacity = cap;
    ChunkedSegmentStore store(options);
    ASSERT_TRUE(store.AppendAll(segments).ok());
    ASSERT_TRUE(store.Finalize().ok());

    ASSERT_EQ(store.size(), mono.size());
    const size_t expect_chunks =
        cap == 0 ? 1 : (segments.size() + cap - 1) / cap;
    EXPECT_EQ(store.num_chunks(), expect_chunks);

    // Catalog columns are bitwise the monolithic columns.
    for (size_t i = 0; i < store.size(); ++i) {
      EXPECT_EQ(store.length(i), mono.length(i));
      EXPECT_EQ(store.half_length(i), mono.half_length(i));
      EXPECT_EQ(store.weight(i), mono.weight(i));
      EXPECT_EQ(store.id(i), mono.id(i));
      EXPECT_EQ(store.trajectory_id(i), mono.trajectory_id(i));
      for (int d = 0; d < mono.dims(); ++d) {
        EXPECT_EQ(store.bbox(i).lo(d), mono.bbox(i).lo(d));
        EXPECT_EQ(store.bbox(i).hi(d), mono.bbox(i).hi(d));
        EXPECT_EQ(store.midpoint_coords(d)[i], mono.midpoint_coords(d)[i]);
      }
    }

    // Each payload chunk is a valid kernel slice.
    for (size_t c = 0; c < store.num_chunks(); ++c) {
      const auto chunk = store.Chunk(c);
      ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
      EXPECT_EQ((*chunk)->size(), store.chunk_size(c));
      ExpectChunkIsExactSlice(**chunk, store.chunk_begin(c), mono);
    }
  }
}

TEST(ChunkedStoreTest, ChunkIndexArithmetic) {
  ChunkedStoreOptions options;
  options.chunk_capacity = 10;
  ChunkedSegmentStore store(options);
  ASSERT_TRUE(store.AppendAll(RandomSegments(25, 1)).ok());
  ASSERT_TRUE(store.Finalize().ok());
  EXPECT_EQ(store.num_chunks(), 3u);
  EXPECT_EQ(store.chunk_of(0), 0u);
  EXPECT_EQ(store.chunk_of(9), 0u);
  EXPECT_EQ(store.chunk_of(10), 1u);
  EXPECT_EQ(store.chunk_of(24), 2u);
  EXPECT_EQ(store.chunk_begin(2), 20u);
  EXPECT_EQ(store.chunk_size(0), 10u);
  EXPECT_EQ(store.chunk_size(2), 5u);  // Only the last chunk is short.
}

// ---------------------------------------------------------------------------
// Bounded mode: spill round trip and the residency cap.
// ---------------------------------------------------------------------------

TEST(ChunkedStoreTest, SpillRoundTripIsBitIdentical) {
  const auto segments = RandomSegments(150, /*seed=*/7);
  const SegmentStore mono(segments);

  ChunkedStoreOptions options;
  options.chunk_capacity = 16;
  options.max_resident_chunks = 1;  // Everything spills, everything faults.
  ChunkedSegmentStore store(options);
  ASSERT_TRUE(store.AppendAll(segments).ok());
  ASSERT_TRUE(store.Finalize().ok());

  // Fault every chunk twice (the second pass re-faults after eviction) —
  // bits must survive the disk round trip both times.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t c = 0; c < store.num_chunks(); ++c) {
      const auto chunk = store.Chunk(c);
      ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
      ExpectChunkIsExactSlice(**chunk, store.chunk_begin(c), mono);
    }
  }
  EXPECT_LE(store.peak_resident_chunks(), 1u);
}

TEST(ChunkedStoreTest, SpillRoundTripPreserves3DSegments) {
  const auto segments = RandomSegments(40, /*seed=*/11, /*dims=*/3);
  const SegmentStore mono(segments);
  ChunkedStoreOptions options;
  options.chunk_capacity = 8;
  options.max_resident_chunks = 2;
  ChunkedSegmentStore store(options);
  ASSERT_TRUE(store.AppendAll(segments).ok());
  ASSERT_TRUE(store.Finalize().ok());
  EXPECT_EQ(store.dims(), 3);
  for (size_t c = 0; c < store.num_chunks(); ++c) {
    const auto chunk = store.Chunk(c);
    ASSERT_TRUE(chunk.ok());
    ExpectChunkIsExactSlice(**chunk, store.chunk_begin(c), mono);
  }
}

TEST(ChunkedStoreTest, ResidencyNeverExceedsTheCap) {
  for (const size_t cap : {1u, 2u, 3u}) {
    SCOPED_TRACE(testing::Message() << "max_resident_chunks " << cap);
    ChunkedStoreOptions options;
    options.chunk_capacity = 8;
    options.max_resident_chunks = cap;
    ChunkedSegmentStore store(options);
    ASSERT_TRUE(store.AppendAll(RandomSegments(96, cap)).ok());
    ASSERT_TRUE(store.Finalize().ok());
    ASSERT_GT(store.num_chunks(), cap) << "test needs more chunks than cap";

    // A worst-case access pattern: strided, repeated, and backwards.
    for (size_t round = 0; round < 3; ++round) {
      for (size_t c = 0; c < store.num_chunks(); ++c) {
        ASSERT_TRUE(store.Chunk((c * 5 + round) % store.num_chunks()).ok());
        EXPECT_LE(store.resident_chunks(), cap);
      }
    }
    EXPECT_LE(store.peak_resident_chunks(), cap);
    EXPECT_GE(store.peak_resident_chunks(), 1u);
  }
}

TEST(ChunkedStoreTest, CacheHitsKeepThePinnedChunkAlive) {
  ChunkedStoreOptions options;
  options.chunk_capacity = 4;
  options.max_resident_chunks = 1;
  ChunkedSegmentStore store(options);
  const auto segments = RandomSegments(12, 3);
  ASSERT_TRUE(store.AppendAll(segments).ok());
  ASSERT_TRUE(store.Finalize().ok());

  auto pinned = store.Chunk(0);
  ASSERT_TRUE(pinned.ok());
  const std::shared_ptr<const SegmentStore> pin = *pinned;
  // Faulting other chunks evicts chunk 0 from the cache, but the pin keeps
  // the store alive and readable (buffer-pool semantics).
  ASSERT_TRUE(store.Chunk(1).ok());
  ASSERT_TRUE(store.Chunk(2).ok());
  EXPECT_EQ(pin->size(), 4u);
  EXPECT_EQ(pin->segment(0).start().x(), segments[0].start().x());
  EXPECT_LE(store.resident_chunks(), 1u);
}

// Regression lane for the race-detector CI job: N threads fault chunks
// concurrently in seeded pseudo-random orders while readers poll the
// residency counters. Every faulted chunk must still be a bit-exact slice
// of the monolithic store, and the LRU cap must hold under contention.
// Run under TSan (the `tsan` preset) this doubles as the lock-discipline
// check for ChunkedSegmentStore's guarded spill/cache state.
TEST(ChunkedStoreTest, ConcurrentFaultHammerStaysBoundedAndBitExact) {
  constexpr size_t kThreads = 6;
  constexpr size_t kFaultsPerThread = 400;
  constexpr size_t kCap = 3;

  const auto segments = RandomSegments(96, /*seed=*/77);
  const SegmentStore mono(segments);

  ChunkedStoreOptions options;
  options.chunk_capacity = 8;
  options.max_resident_chunks = kCap;
  ChunkedSegmentStore store(options);
  ASSERT_TRUE(store.AppendAll(segments).ok());
  ASSERT_TRUE(store.Finalize().ok());
  ASSERT_GT(store.num_chunks(), kCap) << "test needs more chunks than cap";

  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(1000 + t);
      std::uniform_int_distribution<size_t> pick(0, store.num_chunks() - 1);
      for (size_t i = 0; i < kFaultsPerThread; ++i) {
        const size_t c = pick(rng);
        const auto chunk = store.Chunk(c);
        if (!chunk.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Spot-check one segment per fault against the monolithic columns
        // (the full-slice sweep runs single-threaded below); EXPECT_* is
        // not thread-safe, so tally and assert after the join.
        const SegmentStore& slice = **chunk;
        const size_t base = store.chunk_begin(c);
        const size_t local = i % slice.size();
        if (slice.length(local) != mono.length(base + local) ||
            slice.id(local) != mono.id(base + local) ||
            slice.midpoint_coords(0)[local] !=
                mono.midpoint_coords(0)[base + local]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        // Interleave counter reads with the faults: these take the same
        // mutex as the miss path and must never observe an over-cap value.
        if (store.resident_chunks() > kCap) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_LE(store.peak_resident_chunks(), kCap);
  EXPECT_GE(store.peak_resident_chunks(), 1u);

  // The hammer must not have corrupted anything: every chunk is still a
  // bit-exact slice of the monolithic store.
  for (size_t c = 0; c < store.num_chunks(); ++c) {
    const auto chunk = store.Chunk(c);
    ASSERT_TRUE(chunk.ok());
    ExpectChunkIsExactSlice(**chunk, store.chunk_begin(c), mono);
  }
}

// ---------------------------------------------------------------------------
// Merge and lifecycle.
// ---------------------------------------------------------------------------

TEST(ChunkedStoreTest, MergeReproducesTheEagerFreeze) {
  const auto segments = RandomSegments(123, /*seed=*/5);
  const SegmentStore mono(segments);

  for (const size_t resident : {0u, 2u}) {
    SCOPED_TRACE(testing::Message() << "max_resident_chunks " << resident);
    ChunkedStoreOptions options;
    options.chunk_capacity = 17;
    options.max_resident_chunks = resident;
    ChunkedSegmentStore store(options);
    ASSERT_TRUE(store.AppendAll(segments).ok());
    ASSERT_TRUE(store.Finalize().ok());
    const auto merged = store.Merge();
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    ExpectStoresIdentical(*merged, mono);
  }
}

TEST(ChunkedStoreTest, AppendAfterFinalizeIsFailedPrecondition) {
  ChunkedSegmentStore store;
  ASSERT_TRUE(store.AppendAll(RandomSegments(3, 1)).ok());
  ASSERT_TRUE(store.Finalize().ok());
  const auto st = store.Append(RandomSegments(1, 2)[0]);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(ChunkedStoreTest, ReadBeforeFinalizeIsFailedPrecondition) {
  ChunkedSegmentStore store;
  ASSERT_TRUE(store.AppendAll(RandomSegments(3, 1)).ok());
  EXPECT_EQ(store.Chunk(0).status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.Merge().status().code(), StatusCode::kFailedPrecondition);
}

TEST(ChunkedStoreTest, MixedDimensionalityIsInvalidArgument) {
  ChunkedSegmentStore store;
  ASSERT_TRUE(
      store.Append(geom::Segment(geom::Point(0, 0), geom::Point(1, 1), 0, 0))
          .ok());
  const auto st = store.Append(
      geom::Segment(geom::Point(0, 0, 0), geom::Point(1, 1, 1), 1, 0));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(ChunkedStoreTest, EmptyStoreFinalizesToZeroChunks) {
  ChunkedSegmentStore store;
  ASSERT_TRUE(store.Finalize().ok());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.num_chunks(), 0u);
  EXPECT_EQ(store.dims(), 2);
  const auto merged = store.Merge();
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged->empty());
}

// ---------------------------------------------------------------------------
// SegmentStore::FromSegments — the explicit freeze.
// ---------------------------------------------------------------------------

TEST(SegmentStoreFactoryTest, FromSegmentsEqualsTheConstructor) {
  const auto segments = RandomSegments(31, /*seed=*/9);
  const SegmentStore via_ctor(segments);
  const SegmentStore via_factory = SegmentStore::FromSegments(segments);
  ExpectStoresIdentical(via_factory, via_ctor);
}

}  // namespace
}  // namespace traclus::traj
