// Cross-validation of the Fig. 12 implementation against an independently
// coded textbook DBSCAN (Ester et al.) over the same distance and density
// semantics. Cluster labels may be numbered differently between the two, so
// the comparison is on the induced partition: same core segments, same noise
// set, and the same groupings up to relabeling.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "cluster/dbscan_segments.h"
#include "cluster/neighborhood.h"
#include "common/rng.h"
#include "distance/segment_distance.h"
#include "traj/segment_store.h"

namespace traclus::cluster {
namespace {

using distance::SegmentDistance;
using geom::Point;
using geom::Segment;

// ---------- Reference DBSCAN (textbook recursion, no optimizations).
// ----------

struct RefResult {
  std::vector<int> labels;  // >= 0 cluster, -1 noise.
  std::vector<bool> core;
};

RefResult ReferenceDbscan(const std::vector<Segment>& segs,
                          const SegmentDistance& dist, double eps,
                          size_t min_lns) {
  const size_t n = segs.size();
  RefResult r;
  r.labels.assign(n, -2);  // -2 = unvisited.
  r.core.assign(n, false);

  auto neighbors = [&](size_t i) {
    std::vector<size_t> out;
    for (size_t j = 0; j < n; ++j) {
      if (dist(segs[i], segs[j]) <= eps) out.push_back(j);
    }
    return out;
  };
  for (size_t i = 0; i < n; ++i) r.core[i] = neighbors(i).size() >= min_lns;

  int cluster = 0;
  for (size_t i = 0; i < n; ++i) {
    if (r.labels[i] != -2 || !r.core[i]) continue;
    // Flood fill over core connectivity; border points attach, don't spread.
    std::vector<size_t> stack = {i};
    r.labels[i] = cluster;
    while (!stack.empty()) {
      const size_t u = stack.back();
      stack.pop_back();
      if (!r.core[u]) continue;  // Border points attach but don't spread.
      for (const size_t v : neighbors(u)) {
        if (r.labels[v] != -2) continue;  // Already claimed by some cluster.
        r.labels[v] = cluster;
        if (r.core[v]) stack.push_back(v);
      }
    }
    ++cluster;
  }
  for (size_t i = 0; i < n; ++i) {
    if (r.labels[i] == -2) r.labels[i] = -1;
  }
  return r;
}

// Checks that two labelings induce the same partition of the clustered items
// (bijection between label sets) and the same noise set.
void ExpectSamePartition(const std::vector<int>& a, const std::vector<int>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::map<int, int> fwd;
  std::map<int, int> bwd;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i] < 0, b[i] < 0) << "noise disagreement at " << i;
    if (a[i] < 0) continue;
    const auto f = fwd.find(a[i]);
    if (f == fwd.end()) {
      fwd[a[i]] = b[i];
    } else {
      EXPECT_EQ(f->second, b[i]) << "split cluster at " << i;
    }
    const auto g = bwd.find(b[i]);
    if (g == bwd.end()) {
      bwd[b[i]] = a[i];
    } else {
      EXPECT_EQ(g->second, a[i]) << "merged cluster at " << i;
    }
  }
}

std::vector<Segment> RandomWorkload(uint64_t seed, size_t n, double world,
                                    double max_len) {
  common::Rng rng(seed);
  std::vector<Segment> segs;
  for (size_t i = 0; i < n; ++i) {
    const Point s(rng.Uniform(0, world), rng.Uniform(0, world));
    const double ang = rng.Uniform(0, 2 * M_PI);
    const double len = rng.Uniform(0.2, max_len);
    segs.emplace_back(s, Point(s.x() + len * std::cos(ang),
                               s.y() + len * std::sin(ang)),
                      static_cast<geom::SegmentId>(i),
                      static_cast<geom::TrajectoryId>(i));  // Distinct tids:
    // the reference has no cardinality filter, so give every segment its own
    // trajectory and disable the filter's effect (|PTR| = cluster size).
  }
  return segs;
}

struct RefCase {
  uint64_t seed;
  size_t n;
  double world;
  double max_len;
  double eps;
  size_t min_lns;
};

class DbscanReferenceTest : public ::testing::TestWithParam<RefCase> {};

TEST_P(DbscanReferenceTest, PartitionMatchesTextbookDbscan) {
  const RefCase& c = GetParam();
  const auto segs = RandomWorkload(c.seed, c.n, c.world, c.max_len);
  const SegmentDistance dist;

  const RefResult want = ReferenceDbscan(segs, dist, c.eps, c.min_lns);

  const traj::SegmentStore store(segs);
  const BruteForceNeighborhood provider(store, dist);
  DbscanOptions opt;
  opt.eps = c.eps;
  opt.min_lns = static_cast<double>(c.min_lns);
  opt.min_trajectory_cardinality = 0;  // Compare pure DBSCAN semantics.
  const auto got = DbscanSegments(store, provider, opt);

  // Core segments must agree exactly; border segments may legally be claimed
  // by either adjacent cluster depending on visit order, so compare partitions
  // restricted to cores plus the noise flag everywhere.
  std::vector<int> got_cores;
  std::vector<int> want_cores;
  for (size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(got.labels[i] < 0, want.labels[i] < 0)
        << "noise/cluster disagreement at segment " << i;
    if (want.core[i]) {
      got_cores.push_back(got.labels[i]);
      want_cores.push_back(want.labels[i]);
    }
  }
  ExpectSamePartition(got_cores, want_cores);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DbscanReferenceTest,
    ::testing::Values(RefCase{1, 120, 50, 8, 4.0, 4},
                      RefCase{2, 120, 50, 8, 2.0, 3},
                      RefCase{3, 200, 30, 5, 3.0, 5},   // Dense.
                      RefCase{4, 200, 200, 5, 6.0, 3},  // Sparse.
                      RefCase{5, 80, 40, 20, 5.0, 4},   // Long segments.
                      RefCase{6, 150, 50, 8, 1.0, 8},   // Mostly noise.
                      RefCase{7, 150, 50, 8, 15.0, 3},  // Nearly one cluster.
                      RefCase{8, 99, 60, 10, 4.5, 6}));

}  // namespace
}  // namespace traclus::cluster
