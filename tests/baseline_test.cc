// Tests for the comparison baselines: DTW/LCSS/EDR whole-trajectory distances,
// k-medoids, and the Gaffney-Smyth regression-mixture clusterer.

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/kmedoids.h"
#include "baseline/regression_mixture.h"
#include "baseline/warping_distances.h"
#include "common/rng.h"

namespace traclus::baseline {
namespace {

using geom::Point;

traj::Trajectory Line(double y, int n = 10, double step = 1.0,
                      geom::TrajectoryId id = 0) {
  traj::Trajectory tr(id);
  for (int i = 0; i < n; ++i) tr.Add(Point(step * i, y));
  return tr;
}

TEST(DtwTest, IdenticalTrajectoriesHaveZeroDistance) {
  const auto a = Line(0);
  EXPECT_DOUBLE_EQ(DtwDistance(a, a), 0.0);
}

TEST(DtwTest, ParallelLinesAccumulatePerPointOffsets) {
  const auto a = Line(0, 10);
  const auto b = Line(3, 10);
  // Optimal alignment is the diagonal: 10 matches of cost 3.
  EXPECT_NEAR(DtwDistance(a, b), 30.0, 1e-9);
}

TEST(DtwTest, HandlesDifferentLengthsViaWarping) {
  // b duplicates every point of a; warping absorbs the duplication at no cost.
  const auto a = Line(0, 5);
  traj::Trajectory b(1);
  for (const auto& p : a.points()) {
    b.Add(p);
    b.Add(p);
  }
  EXPECT_NEAR(DtwDistance(a, b), 0.0, 1e-12);
}

TEST(DtwTest, SymmetricForRandomInputs) {
  common::Rng rng(3);
  for (int t = 0; t < 20; ++t) {
    traj::Trajectory a(0);
    traj::Trajectory b(1);
    for (int i = 0; i < 12; ++i) {
      a.Add(Point(rng.Uniform(0, 10), rng.Uniform(0, 10)));
      b.Add(Point(rng.Uniform(0, 10), rng.Uniform(0, 10)));
    }
    EXPECT_NEAR(DtwDistance(a, b), DtwDistance(b, a), 1e-9);
  }
}

TEST(LcssTest, IdenticalTrajectoriesMatchFully) {
  const auto a = Line(0, 8);
  EXPECT_EQ(LcssLength(a, a, 0.1), 8u);
  EXPECT_DOUBLE_EQ(LcssDistance(a, a, 0.1), 0.0);
}

TEST(LcssTest, EpsControlsMatching) {
  const auto a = Line(0, 8);
  const auto b = Line(2.0, 8);  // Offset by 2 in y.
  EXPECT_EQ(LcssLength(a, b, 1.0), 0u);   // Too far under eps = 1.
  EXPECT_EQ(LcssLength(a, b, 2.5), 8u);   // All match under eps = 2.5.
  EXPECT_DOUBLE_EQ(LcssDistance(a, b, 1.0), 1.0);
}

TEST(LcssTest, DeltaWindowRestrictsIndexSkew) {
  // b is a shifted copy of a (by 3 index positions).
  traj::Trajectory a(0);
  traj::Trajectory b(1);
  for (int i = 0; i < 10; ++i) a.Add(Point(i, 0));
  for (int i = 0; i < 10; ++i) b.Add(Point(i - 3, 0));
  EXPECT_EQ(LcssLength(a, b, 0.1, /*delta=*/-1), 7u);  // Unconstrained.
  EXPECT_EQ(LcssLength(a, b, 0.1, /*delta=*/1), 0u);   // Window forbids skew 3.
}

TEST(LcssTest, PartialSharedPrefix) {
  // Shared first 5 points, then divergence.
  traj::Trajectory a(0);
  traj::Trajectory b(1);
  for (int i = 0; i < 5; ++i) {
    a.Add(Point(i, 0));
    b.Add(Point(i, 0));
  }
  for (int i = 5; i < 10; ++i) {
    a.Add(Point(i, 10));
    b.Add(Point(i, -10));
  }
  EXPECT_EQ(LcssLength(a, b, 0.5), 5u);
  EXPECT_DOUBLE_EQ(LcssDistance(a, b, 0.5), 0.5);
}

TEST(EdrTest, IdenticalIsZeroDisjointIsLength) {
  const auto a = Line(0, 6);
  EXPECT_DOUBLE_EQ(EdrDistance(a, a, 0.1), 0.0);
  const auto far = Line(100, 6);
  EXPECT_DOUBLE_EQ(EdrDistance(a, far, 0.1), 6.0);
}

TEST(EdrTest, SingleOutlierCostsOneEdit) {
  auto a = Line(0, 8);
  traj::Trajectory b(1);
  for (size_t i = 0; i < a.size(); ++i) {
    b.Add(i == 4 ? Point(4.0, 50.0) : a[i]);
  }
  EXPECT_DOUBLE_EQ(EdrDistance(a, b, 0.5), 1.0);
}

TEST(EdrTest, EmptyTrajectoryCostsOtherLength) {
  const auto a = Line(0, 7);
  traj::Trajectory empty(1);
  EXPECT_DOUBLE_EQ(EdrDistance(a, empty, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(EdrDistance(empty, a, 1.0), 7.0);
}

TEST(KMedoidsTest, SeparatesObviousGroups) {
  // Points on a line: {0, 1, 2} and {100, 101, 102}.
  const std::vector<double> xs = {0, 1, 2, 100, 101, 102};
  KMedoidsConfig cfg;
  cfg.k = 2;
  const auto r = KMedoids(xs.size(),
                          [&](size_t i, size_t j) {
                            return std::abs(xs[i] - xs[j]);
                          },
                          cfg);
  EXPECT_EQ(r.assignments[0], r.assignments[1]);
  EXPECT_EQ(r.assignments[1], r.assignments[2]);
  EXPECT_EQ(r.assignments[3], r.assignments[4]);
  EXPECT_EQ(r.assignments[4], r.assignments[5]);
  EXPECT_NE(r.assignments[0], r.assignments[3]);
  EXPECT_LE(r.total_cost, 4.0 + 1e-9);  // 2 per group with central medoids.
}

TEST(KMedoidsTest, DeterministicForFixedSeed) {
  common::Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 30; ++i) xs.push_back(rng.Uniform(0, 100));
  KMedoidsConfig cfg;
  cfg.k = 3;
  auto d = [&](size_t i, size_t j) { return std::abs(xs[i] - xs[j]); };
  const auto a = KMedoids(xs.size(), d, cfg);
  const auto b = KMedoids(xs.size(), d, cfg);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.medoids, b.medoids);
}

TEST(KMedoidsTest, KEqualsNAssignsEachToItself) {
  const std::vector<double> xs = {0, 10, 20};
  KMedoidsConfig cfg;
  cfg.k = 3;
  const auto r = KMedoids(xs.size(),
                          [&](size_t i, size_t j) {
                            return std::abs(xs[i] - xs[j]);
                          },
                          cfg);
  EXPECT_NEAR(r.total_cost, 0.0, 1e-12);
}

TEST(RegressionMixtureTest, SeparatesTwoLinearPopulations) {
  // Population A: y ≈ 0 moving east; population B: y ≈ 50 moving east.
  common::Rng rng(9);
  traj::TrajectoryDatabase db;
  for (int i = 0; i < 8; ++i) {
    traj::Trajectory tr(i);
    const double y = (i < 4) ? 0.0 : 50.0;
    for (int k = 0; k < 20; ++k) {
      tr.Add(Point(k + rng.Gaussian(0, 0.3), y + rng.Gaussian(0, 0.3)));
    }
    db.Add(std::move(tr));
  }
  RegressionMixtureConfig cfg;
  cfg.num_components = 2;
  cfg.poly_order = 1;
  const RegressionMixtureClusterer clusterer(cfg);
  const auto r = clusterer.Fit(db);
  // All of A together, all of B together, in different components.
  for (int i = 1; i < 4; ++i) EXPECT_EQ(r.assignments[i], r.assignments[0]);
  for (int i = 5; i < 8; ++i) EXPECT_EQ(r.assignments[i], r.assignments[4]);
  EXPECT_NE(r.assignments[0], r.assignments[4]);
}

TEST(RegressionMixtureTest, LogLikelihoodIsNonDecreasing) {
  common::Rng rng(11);
  traj::TrajectoryDatabase db;
  for (int i = 0; i < 6; ++i) {
    traj::Trajectory tr(i);
    for (int k = 0; k < 15; ++k) {
      tr.Add(Point(k, 3.0 * (i % 2) + rng.Gaussian(0, 0.5)));
    }
    db.Add(std::move(tr));
  }
  RegressionMixtureConfig cfg;
  cfg.num_components = 2;
  cfg.poly_order = 2;
  const auto r = RegressionMixtureClusterer(cfg).Fit(db);
  ASSERT_GE(r.log_likelihood.size(), 2u);
  for (size_t i = 1; i < r.log_likelihood.size(); ++i) {
    EXPECT_GE(r.log_likelihood[i], r.log_likelihood[i - 1] - 1e-6);
  }
}

TEST(RegressionMixtureTest, PredictEvaluatesFittedPolynomial) {
  RegressionMixtureResult model;
  model.coeff_x = {{1.0, 2.0}};        // x(t) = 1 + 2t.
  model.coeff_y = {{0.0, 0.0, 4.0}};   // y(t) = 4t².
  const Point p = RegressionMixtureClusterer::Predict(model, 0, 0.5);
  EXPECT_DOUBLE_EQ(p.x(), 2.0);
  EXPECT_DOUBLE_EQ(p.y(), 1.0);
}

TEST(RegressionMixtureTest, ResponsibilitiesAreNormalized) {
  common::Rng rng(13);
  traj::TrajectoryDatabase db;
  for (int i = 0; i < 5; ++i) {
    traj::Trajectory tr(i);
    for (int k = 0; k < 10; ++k) {
      tr.Add(Point(k, rng.Uniform(0, 5)));
    }
    db.Add(std::move(tr));
  }
  RegressionMixtureConfig cfg;
  cfg.num_components = 3;
  const auto r = RegressionMixtureClusterer(cfg).Fit(db);
  for (const auto& resp : r.responsibilities) {
    double sum = 0.0;
    for (const double v : resp) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  double wsum = 0.0;
  for (const double w : r.weights) wsum += w;
  EXPECT_NEAR(wsum, 1.0, 1e-9);
}

TEST(RegressionMixtureTest,
     WholeTrajectoryClusteringMissesCommonSubtrajectory) {
  // The Example 1 failure mode, directly on the baseline: five trajectories
  // share a prefix corridor then fan out. A 2-component whole-trajectory
  // mixture cannot represent "the shared part clusters, the rest doesn't" —
  // every trajectory lands wholly in one component.
  common::Rng rng(21);
  traj::TrajectoryDatabase db;
  const int kShared = 10;
  for (int i = 0; i < 5; ++i) {
    traj::Trajectory tr(i);
    for (int k = 0; k < kShared; ++k) {
      tr.Add(Point(k, rng.Gaussian(0, 0.1)));
    }
    const double angle = -1.2 + 2.4 * i / 4.0;
    for (int k = 1; k <= 10; ++k) {
      tr.Add(Point(kShared - 1 + k * std::cos(angle),
                   k * std::sin(angle) + rng.Gaussian(0, 0.1)));
    }
    db.Add(std::move(tr));
  }
  RegressionMixtureConfig cfg;
  cfg.num_components = 2;
  cfg.poly_order = 2;
  const auto r = RegressionMixtureClusterer(cfg).Fit(db);
  // The model clusters whole trajectories; no component isolates the shared
  // corridor. We simply verify hard assignments exist and are whole-trajectory
  // (this is the structural limitation TRACLUS's integration test contrasts).
  EXPECT_EQ(r.assignments.size(), 5u);
  for (const int a : r.assignments) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 2);
  }
}

}  // namespace
}  // namespace traclus::baseline
