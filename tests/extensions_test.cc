// Tests for the paper's discussion-section extensions (§7.1) and secondary
// claims: 3-D support (§4.3 footnote 3), partition suppression magnitude
// (§4.1.3: 20-30% longer partitions), weighted density, and generator mixes.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/representative.h"
#include "common/rng.h"
#include "core/engine.h"
#include "datagen/hurricane_generator.h"
#include "params/entropy.h"
#include "partition/approximate_partitioner.h"

namespace traclus {
namespace {

using geom::Point;
using geom::Segment;

// Runs the legacy-shaped config through the engine, dying loudly on errors —
// these tests hardcode valid configs and non-empty inputs.
core::TraclusResult RunConfig(const core::TraclusConfig& cfg,
                              const traj::TrajectoryDatabase& db) {
  auto engine = core::TraclusEngine::FromConfig(cfg);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  auto result = engine->Run(db);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

TEST(ThreeDimensionalTest, RepresentativeOfA3DBundleIsItsCenterline) {
  // §4.3 footnote 3: "The same approach can be applied also to three
  // dimensions" — the projection method is dimension-generic.
  std::vector<Segment> segs = {
      Segment(Point(0, 0, 0), Point(10, 0, 0)),
      Segment(Point(0, 1, 1), Point(10, 1, 1)),
      Segment(Point(0, 2, 2), Point(10, 2, 2)),
  };
  cluster::Cluster c;
  c.id = 0;
  c.member_indices = {0, 1, 2};
  cluster::RepresentativeOptions opt;
  opt.min_lns = 3;
  opt.method = cluster::RepresentativeMethod::kProjection;
  const auto rep = cluster::RepresentativeTrajectory(segs, c, opt);
  ASSERT_GE(rep.size(), 2u);
  for (const auto& p : rep.points()) {
    EXPECT_EQ(p.dims(), 3);
    EXPECT_NEAR(p.y(), 1.0, 1e-9);
    EXPECT_NEAR(p.z(), 1.0, 1e-9);
  }
}

TEST(ThreeDimensionalTest, FullPipelineOn3DTrajectories) {
  // A (x, y, t)-style data set: two groups of trajectories sharing space but
  // separated along the third dimension cluster apart — the §7.1(5) temporal
  // extension expressed through the existing d-dimensional machinery.
  traj::TrajectoryDatabase db;
  for (int i = 0; i < 8; ++i) {
    traj::Trajectory tr(i);
    const double t_base = (i < 4) ? 0.0 : 500.0;  // Two "epochs".
    for (int k = 0; k <= 10; ++k) {
      tr.Add(Point(20.0 * k, 0.3 * i, t_base + 2.0 * k));
    }
    db.Add(std::move(tr));
  }
  core::TraclusConfig cfg;
  cfg.eps = 15.0;
  cfg.min_lns = 3;
  const auto result = RunConfig(cfg, db);
  // Same spatial corridor, but the epochs are 500 apart in t: two clusters.
  EXPECT_EQ(result.clustering.clusters.size(), 2u);
}

TEST(SuppressionTest, TwoBitsLengthenPartitionsByAtLeastTwentyPercent) {
  // §4.1.3: "increasing the length of trajectory partitions by 20~30%
  // generally improves the clustering quality". Verify the suppression knob
  // actually buys that much extra length on the hurricane workload.
  datagen::HurricaneConfig gen;
  gen.num_trajectories = 100;
  const auto db = datagen::GenerateHurricanes(gen);

  auto mean_partition_length = [&](double suppression) {
    partition::MdlOptions opt;
    opt.suppression_bits = suppression;
    const partition::ApproximatePartitioner part(opt);
    double total_len = 0.0;
    size_t count = 0;
    for (const auto& tr : db.trajectories()) {
      const auto cp = part.CharacteristicPoints(tr);
      const auto segs = partition::MakePartitionSegments(tr, cp, 0);
      for (const auto& s : segs) total_len += s.Length();
      count += segs.size();
    }
    return total_len / static_cast<double>(count);
  };

  const double base = mean_partition_length(0.0);
  const double suppressed = mean_partition_length(2.0);
  EXPECT_GE(suppressed, 1.2 * base)
      << "2 bits of suppression should lengthen partitions by >= 20%";
}

TEST(WeightedEntropyTest, WeightedMassesShiftTheDistribution) {
  // The §4.2 weighted-count extension applies to the entropy heuristic too:
  // weighting must change p(x_i) and hence H(X) when weights are non-uniform.
  const std::vector<size_t> counts = {2, 2, 2, 2};
  const std::vector<double> uniform_mass = {2, 2, 2, 2};
  const std::vector<double> skewed_mass = {8, 1, 1, 1};
  EXPECT_DOUBLE_EQ(params::NeighborhoodEntropy(counts),
                   params::NeighborhoodEntropy(uniform_mass));
  EXPECT_LT(params::NeighborhoodEntropy(skewed_mass),
            params::NeighborhoodEntropy(uniform_mass));
}

TEST(GeneratorMixTest, AllWestwardHurricanesYieldOneCorridorSystem) {
  datagen::HurricaneConfig gen;
  gen.num_trajectories = 120;
  gen.frac_straight_westward = 1.0;
  gen.frac_recurving = 0.0;
  gen.frac_straight_eastward = 0.0;
  const auto db = datagen::GenerateHurricanes(gen);

  core::TraclusConfig cfg;
  cfg.eps = 0.94;
  cfg.min_lns = 7;
  const auto result = RunConfig(cfg, db);
  ASSERT_GE(result.clustering.clusters.size(), 1u);
  // Every representative must head west (negative net x) in the lower band.
  for (const auto& rep : result.representatives) {
    if (rep.size() < 2) continue;
    EXPECT_LT(rep.points().back().x(), rep.points().front().x());
    for (const auto& p : rep.points()) {
      EXPECT_GT(p.y(), 5.0);
      EXPECT_LT(p.y(), 25.0);
    }
  }
}

TEST(GeneratorMixTest, AllErraticHurricanesYieldNoClusters) {
  datagen::HurricaneConfig gen;
  gen.num_trajectories = 60;
  gen.frac_straight_westward = 0.0;
  gen.frac_recurving = 0.0;
  gen.frac_straight_eastward = 0.0;  // 100% erratic random walks.
  const auto db = datagen::GenerateHurricanes(gen);

  core::TraclusConfig cfg;
  cfg.eps = 0.94;
  cfg.min_lns = 7;
  const auto result = RunConfig(cfg, db);
  EXPECT_LE(result.clustering.clusters.size(), 2u)
      << "random walks should produce (almost) no corridor clusters";
  EXPECT_GT(result.clustering.num_noise, result.segments().size() / 2);
}

TEST(RepresentativeMinLnsOverrideTest, LowerSweepThresholdExtendsCoverage) {
  // core::TraclusConfig::representative_min_lns decouples the sweep threshold
  // from the clustering MinLns (Fig. 15 takes MinLns as its own input).
  traj::TrajectoryDatabase db;
  for (int i = 0; i < 6; ++i) {
    traj::Trajectory tr(i);
    // Staggered spans: full overlap only in the middle third.
    const double lo = 10.0 * i;
    for (int k = 0; k <= 10; ++k) tr.Add(Point(lo + 15.0 * k, 0.3 * i));
    db.Add(std::move(tr));
  }
  core::TraclusConfig cfg;
  cfg.eps = 25.0;  // Spans are staggered by 10, so d∥ between neighbors is 10.
  cfg.min_lns = 4;
  const auto strict = RunConfig(cfg, db);
  cfg.representative_min_lns = 2;
  const auto relaxed = RunConfig(cfg, db);
  ASSERT_EQ(strict.representatives.size(), relaxed.representatives.size());
  ASSERT_GE(strict.representatives.size(), 1u);
  auto span = [](const traj::Trajectory& t) {
    return t.size() < 2 ? 0.0
                        : geom::Distance(t.points().front(), t.points().back());
  };
  EXPECT_GT(span(relaxed.representatives[0]), span(strict.representatives[0]));
}

TEST(DeterminismTest, FullPipelineIsBitStableAcrossRuns) {
  // Stronger than label equality: representatives must match exactly too,
  // across independently constructed engines.
  datagen::HurricaneConfig gen;
  gen.num_trajectories = 80;
  const auto db = datagen::GenerateHurricanes(gen);
  core::TraclusConfig cfg;
  cfg.eps = 0.94;
  cfg.min_lns = 6;
  const auto a = RunConfig(cfg, db);
  const auto b = RunConfig(cfg, db);
  ASSERT_EQ(a.representatives.size(), b.representatives.size());
  for (size_t i = 0; i < a.representatives.size(); ++i) {
    ASSERT_EQ(a.representatives[i].size(), b.representatives[i].size());
    for (size_t j = 0; j < a.representatives[i].size(); ++j) {
      EXPECT_EQ(a.representatives[i][j], b.representatives[i][j]);
    }
  }
}

}  // namespace
}  // namespace traclus
