// Tests for constant-shift embedding (§4.2 / §7.1(3), the paper's reference
// [18] repair for the non-metric TRACLUS distance).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "distance/metric_shift.h"
#include "distance/segment_distance.h"
#include "geom/segment.h"

namespace traclus::distance {
namespace {

using geom::Point;
using geom::Segment;

std::vector<Segment> RandomSegments(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Segment> segs;
  for (size_t i = 0; i < n; ++i) {
    const Point s(rng.Uniform(0, 40), rng.Uniform(0, 40));
    segs.emplace_back(s, Point(s.x() + rng.Uniform(-10, 10),
                               s.y() + rng.Uniform(-10, 10)),
                      static_cast<geom::SegmentId>(i),
                      static_cast<geom::TrajectoryId>(i));
  }
  return segs;
}

TEST(MetricShiftTest, EuclideanPointsNeedNoShift) {
  common::Rng rng(1);
  std::vector<Point> pts;
  for (int i = 0; i < 20; ++i) {
    pts.emplace_back(rng.Uniform(0, 10), rng.Uniform(0, 10));
  }
  auto dist = [&](size_t i, size_t j) {
    return geom::Distance(pts[i], pts[j]);
  };
  EXPECT_NEAR(MinimalMetricShift(pts.size(), dist), 0.0, 1e-9);
  EXPECT_NEAR(MaxTriangleViolation(pts.size(), dist), 0.0, 1e-9);
}

TEST(MetricShiftTest, DetectsKnownViolation) {
  // The §4.2 collinear-chain counterexample: d(0,1) = d(1,2) = 0, d(0,2) = 10.
  const SegmentDistance dist;
  std::vector<Segment> segs = {
      Segment(Point(0, 0), Point(10, 0), 0, 0),
      Segment(Point(10, 0), Point(20, 0), 1, 1),
      Segment(Point(20, 0), Point(30, 0), 2, 2),
  };
  auto d = [&](size_t i, size_t j) { return dist(segs[i], segs[j]); };
  EXPECT_NEAR(MaxTriangleViolation(segs.size(), d), 10.0, 1e-9);
  EXPECT_NEAR(MinimalMetricShift(segs.size(), d), 10.0, 1e-9);
}

TEST(MetricShiftTest, TraclusDistanceViolatesOnRandomSets) {
  // Random segment sets routinely contain triangle violations — the reason the
  // index cannot prune with the raw distance.
  const SegmentDistance dist;
  const auto segs = RandomSegments(30, 7);
  auto d = [&](size_t i, size_t j) { return dist(segs[i], segs[j]); };
  EXPECT_GT(MaxTriangleViolation(segs.size(), d), 0.0);
}

class ShiftPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShiftPropertyTest, ShiftedDistanceIsAMetric) {
  const SegmentDistance dist;
  const auto segs = RandomSegments(25, GetParam());
  auto base = [&](size_t i, size_t j) { return dist(segs[i], segs[j]); };
  const double c = MinimalMetricShift(segs.size(), base);
  const ShiftedDistance shifted(base, c);
  // Zero diagonal, symmetry, triangle inequality over all triples.
  for (size_t i = 0; i < segs.size(); ++i) {
    EXPECT_DOUBLE_EQ(shifted(i, i), 0.0);
    for (size_t j = 0; j < segs.size(); ++j) {
      if (i == j) continue;
      EXPECT_DOUBLE_EQ(shifted(i, j), shifted(j, i));
      EXPECT_GE(shifted(i, j), 0.0);
    }
  }
  auto as_fn = [&](size_t i, size_t j) { return shifted(i, j); };
  EXPECT_LE(MaxTriangleViolation(segs.size(), as_fn), 1e-9);
}

TEST_P(ShiftPropertyTest, ShiftPreservesDistanceOrdering) {
  const SegmentDistance dist;
  const auto segs = RandomSegments(15, GetParam() + 100);
  auto base = [&](size_t i, size_t j) { return dist(segs[i], segs[j]); };
  const ShiftedDistance shifted(base, 5.0);
  // Off-diagonal order of distances from any anchor is unchanged.
  for (size_t anchor = 0; anchor < segs.size(); ++anchor) {
    for (size_t a = 0; a < segs.size(); ++a) {
      for (size_t b = 0; b < segs.size(); ++b) {
        if (a == anchor || b == anchor) continue;
        if (base(anchor, a) < base(anchor, b)) {
          EXPECT_LT(shifted(anchor, a), shifted(anchor, b));
        }
      }
    }
  }
}

TEST_P(ShiftPropertyTest, SmallerShiftStillViolates) {
  // Minimality: the tight shift minus epsilon must leave a violation.
  const SegmentDistance dist;
  const auto segs = RandomSegments(20, GetParam() + 200);
  auto base = [&](size_t i, size_t j) { return dist(segs[i], segs[j]); };
  const double c = MinimalMetricShift(segs.size(), base);
  if (c < 1e-6) return;  // Already metric on this draw; nothing to check.
  const ShiftedDistance under(base, c * 0.9);
  auto as_fn = [&](size_t i, size_t j) { return under(i, j); };
  EXPECT_GT(MaxTriangleViolation(segs.size(), as_fn), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShiftPropertyTest,
                         ::testing::Values(3u, 14u, 159u, 2653u));

}  // namespace
}  // namespace traclus::distance
