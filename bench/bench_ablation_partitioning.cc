// E18 — Ablation of the partitioning design decisions DESIGN.md §4 calls out:
//   (a) MDL encoder variant (paper's log2-clamped vs log2(1+x));
//   (b) partition suppression (§4.1.3: longer partitions improve clustering);
//   (c) partitioner choice: MDL vs Douglas-Peucker vs equal-interval.
// For each configuration we report compression (points per partition) and the
// resulting cluster structure on the hurricane workload at fixed (eps, MinLns).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "datagen/hurricane_generator.h"
#include "eval/cluster_stats.h"
#include "partition/douglas_peucker.h"
#include "partition/equal_interval.h"
#include "partition/partitioner.h"

namespace {

using namespace traclus;

void Report(const char* label, const traj::TrajectoryDatabase& db,
            const traj::SegmentStore& store) {
  core::TraclusConfig cfg;
  cfg.eps = 0.94;
  cfg.min_lns = 7;
  cfg.generate_representatives = false;
  const auto clustering = bench::GroupOnly(cfg, store);
  const auto stats = eval::SummarizeClustering(store.segments(), clustering);
  std::printf(
      "%-26s: %6zu partitions (%4.1f pts/partition) -> %2zu clusters, "
      "%5zu noise\n",
      label, store.size(),
      static_cast<double>(db.TotalPoints()) /
          std::max<size_t>(1, store.size()),
      stats.num_clusters, stats.num_noise);
}

traj::SegmentStore PartitionWith(
    const partition::TrajectoryPartitioner& partitioner,
    const traj::TrajectoryDatabase& db) {
  std::vector<geom::Segment> segments;
  for (const auto& tr : db.trajectories()) {
    const auto cp = partitioner.CharacteristicPoints(tr);
    const auto part = partition::MakePartitionSegments(
        tr, cp, static_cast<geom::SegmentId>(segments.size()));
    segments.insert(segments.end(), part.begin(), part.end());
  }
  return traj::SegmentStore(std::move(segments));
}

}  // namespace

int main() {
  bench::PrintHeader("E18 / bench_ablation_partitioning",
                     "DESIGN.md §4 ablations (encoder, suppression, "
                     "partitioner)",
                     "MDL with suppression ~20-30%% longer partitions improves "
                     "clustering (§4.1.3); MDL needs no tolerance knob (§3.2)");

  const auto db = datagen::GenerateHurricanes(datagen::HurricaneConfig{});
  bench::PrintDatabaseStats("hurricane", db);
  std::printf("\nfixed grouping parameters: eps = 0.94, MinLns = 7\n\n");

  // (a)+(b) MDL encoder x suppression.
  for (const auto enc : {partition::MdlEncoding::kLog2Clamped,
                         partition::MdlEncoding::kLog2Plus1}) {
    for (const double sup : {0.0, 2.0, 4.0}) {
      core::TraclusConfig cfg;
      cfg.partition.encoding = enc;
      cfg.partition.suppression_bits = sup;
      const auto segments = bench::PartitionOnly(cfg, db);
      char label[64];
      std::snprintf(label, sizeof(label), "MDL %s sup=%.0f",
                    enc == partition::MdlEncoding::kLog2Clamped ? "clamped"
                                                                : "log2(1+x)",
                    sup);
      Report(label, db, segments);
    }
  }
  std::printf("\n");

  // (c) Baseline partitioners at several tolerances/strides.
  for (const double tol : {0.5, 1.0, 2.0}) {
    const partition::DouglasPeuckerPartitioner dp(tol);
    char label[64];
    std::snprintf(label, sizeof(label), "Douglas-Peucker tol=%.1f", tol);
    Report(label, db, PartitionWith(dp, db));
  }
  for (const size_t stride : {size_t{1}, size_t{4}, size_t{8}}) {
    const partition::EqualIntervalPartitioner eq(stride);
    char label[64];
    std::snprintf(label, sizeof(label), "equal-interval stride=%zu", stride);
    Report(label, db, PartitionWith(eq, db));
  }

  std::printf(
      "\nreading: MDL reaches corridor-scale clusters without a per-data-set "
      "tolerance; Douglas-Peucker needs tol tuned per workload; equal-interval "
      "at small stride floods the grouping phase with short segments (the "
      "Fig. 11 over-clustering hazard).\n");
  return 0;
}
