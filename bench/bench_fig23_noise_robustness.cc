// E9 — Fig. 23: robustness to noise.
//
// The paper runs TRACLUS on a synthetic set where 25% of the trajectories are
// noise and shows "the clusters are correctly identified despite many noises"
// (DBSCAN heritage). We plant 4 corridors, add 25% random-walk trajectories,
// and verify (a) exactly the planted clusters are recovered, (b) recovery is
// stable as the noise fraction grows.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/noisy_generator.h"

int main() {
  using namespace traclus;
  bench::PrintHeader("E9 / bench_fig23_noise_robustness",
                     "Figure 23 (clustering of a synthetic set with 25% noise)",
                     "clusters correctly identified despite many noises");

  for (const double noise_fraction : {0.0, 0.25, 0.4}) {
    datagen::NoisyConfig gen;
    gen.num_trajectories = 120;
    gen.noise_fraction = noise_fraction;
    gen.num_planted_corridors = 4;
    const auto db = datagen::GenerateNoisy(gen);

    core::TraclusConfig cfg;
    cfg.eps = 3.0;
    cfg.min_lns = 8;
    const auto result = bench::RunPipeline(cfg, db);
    std::printf("noise fraction %.0f%%: ", 100 * noise_fraction);
    bench::PrintClusteringSummary(cfg.eps, cfg.min_lns, result);
    std::printf("    planted corridors: %d, recovered clusters: %zu %s\n",
                gen.num_planted_corridors, result.clustering.clusters.size(),
                result.clustering.clusters.size() ==
                        static_cast<size_t>(gen.num_planted_corridors)
                    ? "[exact recovery]"
                    : "");
    if (noise_fraction == 0.25) {
      const auto svg = bench::WriteClusterSvg("fig23_noisy.svg", db, result);
      std::printf("    figure written to %s\n", svg.c_str());
    }
  }
  std::printf("\npaper shape: recovery unchanged at 25%% noise — check rows "
              "above for 4/4 recovered clusters.\n");
  return 0;
}
