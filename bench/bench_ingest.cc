// Ingest-path benchmarks for the streaming data-source API (traj/source.h)
// and the chunked out-of-core segment store (traj/chunked_store.h).
//
// The corpus is synthetic: 10,000 random-walk trajectories of 101 points
// each — 1,010,000 CSV rows yielding 1,000,000 raw segments. Two layers are
// measured, each eager-vs-streaming:
//
//   * Parse layer (rows/s): the historical eager shape (drain the whole CSV
//     into a TrajectoryDatabase, what ReadCsv does) against the pull-based
//     source loop that never materializes the database, and against the
//     streaming pipeline ingest shape (pull + append segments straight into
//     a ChunkedSegmentStore, unbounded and residency-capped).
//   * Freeze layer (segments/s): the monolithic SegmentStore constructor
//     against ChunkedSegmentStore append+finalize, unbounded and spilling.
//
// Bounded-mode variants report the peak_resident_chunks counter so the CI
// JSON history pins the residency guarantee (≤ the cap) alongside the
// throughput cost of spilling. Uploaded per commit next to
// bench_distance_micro.json (see .github/workflows/ci.yml).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "geom/segment.h"
#include "traj/chunked_store.h"
#include "traj/segment_store.h"
#include "traj/source.h"
#include "traj/trajectory.h"
#include "traj/trajectory_database.h"

namespace {

using namespace traclus;

constexpr size_t kTrajectories = 10000;
constexpr size_t kPointsPerTrajectory = 101;  // 100 segments each.
constexpr size_t kRows = kTrajectories * kPointsPerTrajectory;
constexpr size_t kSegments = kTrajectories * (kPointsPerTrajectory - 1);

// Random-walk corpus, built once. Steps are drawn from the length range the
// distance microbenches use, so chunk payloads look like real partitions.
struct Corpus {
  std::string csv;                     // kRows data rows.
  std::vector<geom::Segment> segments; // The kSegments raw segments.
};

const Corpus& SharedCorpus() {
  static const Corpus corpus = [] {
    Corpus c;
    c.csv.reserve(kRows * 32);
    c.segments.reserve(kSegments);
    common::Rng rng(20070612);  // SIGMOD'07 vintage.
    char row[64];
    geom::SegmentId next_segment = 0;
    for (size_t t = 0; t < kTrajectories; ++t) {
      double x = rng.Uniform(0, 1000);
      double y = rng.Uniform(0, 1000);
      geom::Point prev(x, y);
      for (size_t p = 0; p < kPointsPerTrajectory; ++p) {
        std::snprintf(row, sizeof(row), "%zu,%.6f,%.6f\n", t, x, y);
        c.csv += row;
        const geom::Point cur(x, y);
        if (p > 0) {
          c.segments.emplace_back(prev, cur, next_segment++,
                                  static_cast<geom::TrajectoryId>(t));
        }
        prev = cur;
        x += rng.Uniform(-5, 5);
        y += rng.Uniform(-5, 5);
      }
    }
    return c;
  }();
  return corpus;
}

void Die(const common::Status& status) {
  std::fprintf(stderr, "bench_ingest: %s\n", status.ToString().c_str());
  std::abort();
}

// --- Parse layer: CSV rows/s. --------------------------------------------

// The historical eager ingest: the whole corpus becomes a resident
// TrajectoryDatabase before the pipeline can start (the ReadCsv shape —
// ReadCsv itself is now DrainToDatabase over a CsvFileSource).
void BM_IngestEagerDatabase(benchmark::State& state) {
  const auto& corpus = SharedCorpus();
  for (auto _ : state) {
    traj::CsvStringSource source(corpus.csv);
    auto db = traj::DrainToDatabase(source);
    if (!db.ok()) Die(db.status());
    benchmark::DoNotOptimize(db->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRows));
}
BENCHMARK(BM_IngestEagerDatabase)->Unit(benchmark::kMillisecond);

// The parser ceiling: pull every trajectory and drop it. Whatever separates
// this from BM_IngestEagerDatabase is pure materialization cost.
void BM_IngestStreamingParse(benchmark::State& state) {
  const auto& corpus = SharedCorpus();
  for (auto _ : state) {
    traj::CsvStringSource source(corpus.csv);
    traj::Trajectory tr;
    size_t n = 0;
    while (true) {
      const auto more = source.Next(&tr);
      if (!more.ok()) Die(more.status());
      if (!*more) break;
      n += tr.size();
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRows));
}
BENCHMARK(BM_IngestStreamingParse)->Unit(benchmark::kMillisecond);

// The streaming pipeline's ingest shape: pull one trajectory, turn it into
// raw segments, append them into the chunked store, let the trajectory go.
// Arg 0 = chunk capacity, arg 1 = max resident chunks (0 = unbounded; > 0
// spills sealed chunks and reports the residency high-water mark).
void BM_IngestStreamingChunked(benchmark::State& state) {
  const auto& corpus = SharedCorpus();
  traj::ChunkedStoreOptions options;
  options.chunk_capacity = static_cast<size_t>(state.range(0));
  options.max_resident_chunks = static_cast<size_t>(state.range(1));
  size_t peak = 0;
  for (auto _ : state) {
    traj::CsvStringSource source(corpus.csv);
    traj::ChunkedSegmentStore store(options);
    traj::Trajectory tr;
    while (true) {
      const auto more = source.Next(&tr);
      if (!more.ok()) Die(more.status());
      if (!*more) break;
      const auto status = store.AppendAll(tr.RawSegments());
      if (!status.ok()) Die(status);
    }
    const auto status = store.Finalize();
    if (!status.ok()) Die(status);
    benchmark::DoNotOptimize(store.size());
    peak = store.peak_resident_chunks();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRows));
  state.counters["peak_resident_chunks"] =
      benchmark::Counter(static_cast<double>(peak));
}
BENCHMARK(BM_IngestStreamingChunked)
    ->Args({65536, 0})
    ->Args({65536, 4})
    ->Unit(benchmark::kMillisecond);

// --- Freeze layer: segments/s into a queryable store. ---------------------

// Eager baseline: one monolithic SegmentStore freeze of the whole corpus.
// The refill copy is excluded, as in BM_SegmentStoreBuild.
void BM_FreezeEagerStore(benchmark::State& state) {
  const auto& corpus = SharedCorpus();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<geom::Segment> input = corpus.segments;
    state.ResumeTiming();
    benchmark::DoNotOptimize(traj::SegmentStore(std::move(input)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSegments));
}
BENCHMARK(BM_FreezeEagerStore)->Unit(benchmark::kMillisecond);

// Chunked freeze: append + finalize. Same args as BM_IngestStreamingChunked;
// the bounded variant pays the spill write for every sealed chunk.
void BM_FreezeChunkedStore(benchmark::State& state) {
  const auto& corpus = SharedCorpus();
  traj::ChunkedStoreOptions options;
  options.chunk_capacity = static_cast<size_t>(state.range(0));
  options.max_resident_chunks = static_cast<size_t>(state.range(1));
  size_t peak = 0;
  for (auto _ : state) {
    traj::ChunkedSegmentStore store(options);
    auto status = store.AppendAll(corpus.segments);
    if (!status.ok()) Die(status);
    status = store.Finalize();
    if (!status.ok()) Die(status);
    benchmark::DoNotOptimize(store.size());
    peak = store.peak_resident_chunks();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSegments));
  state.counters["peak_resident_chunks"] =
      benchmark::Counter(static_cast<double>(peak));
}
BENCHMARK(BM_FreezeChunkedStore)
    ->Args({65536, 0})
    ->Args({65536, 4})
    ->Unit(benchmark::kMillisecond);

// Cold-read cost of the residency cap: fault every chunk of a spilled store
// back in, in order, twice — all misses under a cap of 1, so this prices one
// full rebuild-from-spill sweep per pass. peak_resident_chunks pins the
// guarantee in the JSON history.
void BM_ChunkedColdScan(benchmark::State& state) {
  const auto& corpus = SharedCorpus();
  traj::ChunkedStoreOptions options;
  options.chunk_capacity = 65536;
  options.max_resident_chunks = 1;
  traj::ChunkedSegmentStore store(options);
  auto status = store.AppendAll(corpus.segments);
  if (!status.ok()) Die(status);
  status = store.Finalize();
  if (!status.ok()) Die(status);
  for (auto _ : state) {
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t c = 0; c < store.num_chunks(); ++c) {
        const auto chunk = store.Chunk(c);
        if (!chunk.ok()) Die(chunk.status());
        benchmark::DoNotOptimize((*chunk)->size());
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          static_cast<int64_t>(kSegments));
  state.counters["peak_resident_chunks"] =
      benchmark::Counter(static_cast<double>(store.peak_resident_chunks()));
}
BENCHMARK(BM_ChunkedColdScan)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
