// E13 — Appendix A: the TRACLUS distance vs the naive endpoint distance.
//
// The paper's counterexample: L1 = (0,0)->(200,0), L2 = (100,100)->(300,100)
// (parallel to L1), L3 = (100,100)->(200,200) (45° rotated). Under the naive
// "sum of the distances of endpoints", both L2 and L3 are exactly 200*sqrt(2)
// from L1, so the measure cannot decide which is more similar "even though it
// is obvious" — illustrating the importance of the angle distance.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "distance/endpoint_distance.h"
#include "distance/segment_distance.h"

int main() {
  using namespace traclus;
  using geom::Point;
  using geom::Segment;
  bench::PrintHeader("E13 / bench_appendix_a_distance",
                     "Appendix A (Figure 24: naive endpoint distance ties)",
                     "d(L1,L2) = d(L1,L3) = 200*sqrt(2) under the naive "
                     "measure; TRACLUS ranks L2 closer via the angle distance");

  const Segment l1(Point(0, 0), Point(200, 0));
  const Segment l2(Point(100, 100), Point(300, 100));
  const Segment l3(Point(100, 100), Point(200, 200));
  const double expected = 200.0 * std::sqrt(2.0);

  std::printf("naive nearest-endpoint sum (reference [4] style):\n");
  std::printf("  d(L1, L2) = %.4f  (paper: %.4f)\n",
              distance::DirectedNearestEndpointSum(l1, l2), expected);
  std::printf("  d(L1, L3) = %.4f  (paper: %.4f)   -> TIE, cannot rank\n\n",
              distance::DirectedNearestEndpointSum(l1, l3), expected);

  const distance::SegmentDistance dist;
  const auto c2 = dist.Components(l1, l2);
  const auto c3 = dist.Components(l1, l3);
  std::printf("TRACLUS distance (w_perp = w_par = w_angle = 1):\n");
  std::printf("  dist(L1, L2) = %8.2f   (perp %.2f, par %.2f, angle %.2f)\n",
              dist(l1, l2), c2.perpendicular, c2.parallel, c2.angle);
  std::printf("  dist(L1, L3) = %8.2f   (perp %.2f, par %.2f, angle %.2f)\n",
              dist(l1, l3), c3.perpendicular, c3.parallel, c3.angle);
  std::printf("\nmeasured: TRACLUS ranks L2 %s than L3 (paper: L2 more "
              "similar)\n",
              dist(l1, l2) < dist(l1, l3) ? "MORE similar" : "LESS similar");
  return 0;
}
