// E2 — Fig. 17: QMeasure vs ε for MinLns ∈ {5, 6, 7} on the hurricane data.
//
// The paper sweeps ε = 27..33 around its estimated optimum (31) and shows
// QMeasure is nearly minimal at the visually-optimal (ε = 30, MinLns = 6)
// within each MinLns series. We sweep the same ±10% band around our estimated
// optimum. Shape to verify: within a MinLns series, QMeasure dips near the
// entropy-estimated ε (the paper notes the measure is only comparable within
// one MinLns value).

#include <cstdio>
#include <fstream>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/hurricane_generator.h"
#include "eval/qmeasure.h"
#include "params/parameter_heuristic.h"

int main() {
  using namespace traclus;
  bench::PrintHeader("E2 / bench_fig17_qmeasure_hurricane",
                     "Figure 17 (QMeasure vs eps, MinLns = 5/6/7, hurricane)",
                     "QMeasure nearly minimal at the optimal eps=30 within "
                     "MinLns=6; smaller QMeasure = better clustering");

  const auto db = datagen::GenerateHurricanes(datagen::HurricaneConfig{});
  bench::PrintDatabaseStats("hurricane", db);

  core::TraclusConfig base;
  const auto store = bench::PartitionOnly(base, db);

  // Estimate eps* as in E1, then sweep ±3 grid steps like the paper's 27..33.
  const distance::SegmentDistance dist;
  params::HeuristicOptions hopt;
  hopt.eps_lo = 0.1;
  hopt.eps_hi = 6.0;
  hopt.grid_points = 60;
  const auto est = params::EstimateParameters(store, dist, hopt);
  std::printf("estimated eps* = %.3f (paper: 31)\n\n", est.eps);

  std::vector<double> eps_grid;
  for (int k = -3; k <= 3; ++k) {
    eps_grid.push_back(est.eps * (1.0 + 0.1 * k));
  }

  const std::string csv_path =
      bench::OutDir() + "/fig17_qmeasure_hurricane.csv";
  std::ofstream csv(csv_path);
  csv << "eps,min_lns,qmeasure,total_sse,noise_penalty,clusters\n";
  std::printf("%-8s %-8s %-14s %-14s %-14s %s\n", "eps", "MinLns", "QMeasure",
              "TotalSSE", "NoisePenalty", "clusters");
  for (const double min_lns : {5.0, 6.0, 7.0}) {
    double best_q = 0.0;
    double best_eps = 0.0;
    bool first = true;
    for (const double eps : eps_grid) {
      core::TraclusConfig cfg;
      cfg.eps = eps;
      cfg.min_lns = min_lns;
      cfg.generate_representatives = false;
      const auto clustering = bench::GroupOnly(cfg, store);
      const auto q =
          eval::ComputeQMeasure(store.segments(), clustering, dist);
      std::printf("%-8.3f %-8.0f %-14.1f %-14.1f %-14.1f %zu\n", eps, min_lns,
                  q.qmeasure, q.total_sse, q.noise_penalty,
                  clustering.clusters.size());
      csv << eps << "," << min_lns << "," << q.qmeasure << "," << q.total_sse
          << "," << q.noise_penalty << "," << clustering.clusters.size()
          << "\n";
      if (first || q.qmeasure < best_q) {
        best_q = q.qmeasure;
        best_eps = eps;
        first = false;
      }
    }
    std::printf("  -> MinLns=%.0f: QMeasure minimal at eps=%.3f "
                "(estimated eps*=%.3f)\n\n",
                min_lns, best_eps, est.eps);
  }
  std::printf("series written to %s\n", csv_path.c_str());
  return 0;
}
