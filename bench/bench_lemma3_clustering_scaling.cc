// E12 — Lemma 3: line-segment clustering is O(n log n) with a spatial index
// and O(n²) without one. We cluster growing slices of the hurricane segment
// database with the grid index vs the brute-force provider and fit the
// complexity curves. (The index prunes with the Euclidean lower bound of the
// non-metric distance; see GridNeighborhoodIndex.)

#include <benchmark/benchmark.h>

#include "cluster/dbscan_segments.h"
#include "cluster/neighborhood.h"
#include "cluster/neighborhood_index.h"
#include "cluster/rtree_index.h"
#include "core/traclus.h"
#include "datagen/hurricane_generator.h"

namespace {

using namespace traclus;

const std::vector<geom::Segment>& AllSegments() {
  static const std::vector<geom::Segment> segments = [] {
    datagen::HurricaneConfig gen;
    gen.num_trajectories = 1200;  // Enough partitions for the largest slice.
    core::TraclusConfig cfg;
    return core::Traclus(cfg).PartitionPhase(datagen::GenerateHurricanes(gen));
  }();
  return segments;
}

std::vector<geom::Segment> Slice(size_t n) {
  const auto& all = AllSegments();
  return std::vector<geom::Segment>(all.begin(),
                                    all.begin() + std::min(n, all.size()));
}

cluster::DbscanOptions Options() {
  cluster::DbscanOptions opt;
  opt.eps = 0.94;
  opt.min_lns = 7;
  return opt;
}

void BM_DbscanWithGridIndex(benchmark::State& state) {
  const auto segs = Slice(static_cast<size_t>(state.range(0)));
  const distance::SegmentDistance dist;
  for (auto _ : state) {
    // Index construction is part of the clustering cost, as in Lemma 3.
    const cluster::GridNeighborhoodIndex index(segs, dist);
    benchmark::DoNotOptimize(cluster::DbscanSegments(segs, index, Options()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DbscanWithGridIndex)
    ->RangeMultiplier(2)
    ->Range(1024, 16384)
    ->Complexity(benchmark::oNLogN)
    ->Unit(benchmark::kMillisecond);

void BM_DbscanWithRTree(benchmark::State& state) {
  const auto segs = Slice(static_cast<size_t>(state.range(0)));
  const distance::SegmentDistance dist;
  for (auto _ : state) {
    const cluster::StrRTreeIndex index(segs, dist);
    benchmark::DoNotOptimize(cluster::DbscanSegments(segs, index, Options()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DbscanWithRTree)
    ->RangeMultiplier(2)
    ->Range(1024, 16384)
    ->Complexity(benchmark::oNLogN)
    ->Unit(benchmark::kMillisecond);

void BM_DbscanBruteForce(benchmark::State& state) {
  const auto segs = Slice(static_cast<size_t>(state.range(0)));
  const distance::SegmentDistance dist;
  for (auto _ : state) {
    const cluster::BruteForceNeighborhood provider(segs, dist);
    benchmark::DoNotOptimize(cluster::DbscanSegments(segs, provider, Options()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DbscanBruteForce)
    ->RangeMultiplier(2)
    ->Range(1024, 8192)
    ->Complexity(benchmark::oNSquared)
    ->Unit(benchmark::kMillisecond);

void BM_NeighborhoodQueryGridIndex(benchmark::State& state) {
  const auto segs = Slice(static_cast<size_t>(state.range(0)));
  const distance::SegmentDistance dist;
  const cluster::GridNeighborhoodIndex index(segs, dist);
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Neighbors(q % segs.size(), 0.94));
    ++q;
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NeighborhoodQueryGridIndex)
    ->RangeMultiplier(4)
    ->Range(1024, 16384)
    ->Complexity();

void BM_NeighborhoodQueryBruteForce(benchmark::State& state) {
  const auto segs = Slice(static_cast<size_t>(state.range(0)));
  const distance::SegmentDistance dist;
  const cluster::BruteForceNeighborhood provider(segs, dist);
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(provider.Neighbors(q % segs.size(), 0.94));
    ++q;
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NeighborhoodQueryBruteForce)
    ->RangeMultiplier(4)
    ->Range(1024, 16384)
    ->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
