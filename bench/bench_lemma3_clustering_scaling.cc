// E12 — Lemma 3: line-segment clustering is O(n log n) with a spatial index
// and O(n²) without one. We cluster growing slices of the hurricane segment
// database with the grid index vs the brute-force provider and fit the
// complexity curves. (The index prunes with the Euclidean lower bound of the
// non-metric distance; see GridNeighborhoodIndex.)

#include <benchmark/benchmark.h>

#include "cluster/dbscan_segments.h"
#include "cluster/neighborhood.h"
#include "cluster/neighborhood_index.h"
#include "cluster/rtree_index.h"
#include "core/engine.h"
#include "datagen/hurricane_generator.h"

namespace {

using namespace traclus;

const traj::SegmentStore& AllSegments() {
  static const traj::SegmentStore store = [] {
    datagen::HurricaneConfig gen;
    gen.num_trajectories = 1200;  // Enough partitions for the largest slice.
    const auto engine =
        core::TraclusEngine::FromConfig(core::TraclusConfig{});
    return std::move(engine->Partition(datagen::GenerateHurricanes(gen))
                         ->store);
  }();
  return store;
}

traj::SegmentStore Slice(size_t n) {
  const auto& all = AllSegments().segments();
  return traj::SegmentStore(std::vector<geom::Segment>(
      all.begin(), all.begin() + std::min(n, all.size())));
}

cluster::DbscanOptions Options() {
  cluster::DbscanOptions opt;
  opt.eps = 0.94;
  opt.min_lns = 7;
  return opt;
}

void BM_DbscanWithGridIndex(benchmark::State& state) {
  const auto segs = Slice(static_cast<size_t>(state.range(0)));
  const distance::SegmentDistance dist;
  for (auto _ : state) {
    // Index construction is part of the clustering cost, as in Lemma 3.
    const cluster::GridNeighborhoodIndex index(segs, dist);
    benchmark::DoNotOptimize(cluster::DbscanSegments(segs, index, Options()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DbscanWithGridIndex)
    ->RangeMultiplier(2)
    ->Range(1024, 16384)
    ->Complexity(benchmark::oNLogN)
    ->Unit(benchmark::kMillisecond);

void BM_DbscanWithRTree(benchmark::State& state) {
  const auto segs = Slice(static_cast<size_t>(state.range(0)));
  const distance::SegmentDistance dist;
  for (auto _ : state) {
    const cluster::StrRTreeIndex index(segs, dist);
    benchmark::DoNotOptimize(cluster::DbscanSegments(segs, index, Options()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DbscanWithRTree)
    ->RangeMultiplier(2)
    ->Range(1024, 16384)
    ->Complexity(benchmark::oNLogN)
    ->Unit(benchmark::kMillisecond);

void BM_DbscanBruteForce(benchmark::State& state) {
  const auto segs = Slice(static_cast<size_t>(state.range(0)));
  const distance::SegmentDistance dist;
  for (auto _ : state) {
    const cluster::BruteForceNeighborhood provider(segs, dist);
    benchmark::DoNotOptimize(
        cluster::DbscanSegments(segs, provider, Options()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DbscanBruteForce)
    ->RangeMultiplier(2)
    ->Range(1024, 8192)
    ->Complexity(benchmark::oNSquared)
    ->Unit(benchmark::kMillisecond);

void BM_NeighborhoodQueryGridIndex(benchmark::State& state) {
  const auto segs = Slice(static_cast<size_t>(state.range(0)));
  const distance::SegmentDistance dist;
  const cluster::GridNeighborhoodIndex index(segs, dist);
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Neighbors(q % segs.size(), 0.94));
    ++q;
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NeighborhoodQueryGridIndex)
    ->RangeMultiplier(4)
    ->Range(1024, 16384)
    ->Complexity();

// Thread scaling of the parallel execution engine on the largest slice:
// the ε-neighborhood batch is fanned across a pool and the sequential
// expansion loop consumes cached lists. Args = {slice size, num_threads}.
// Labels and cluster IDs are asserted identical to the single-threaded run
// before timing starts, so a speedup here is a speedup of the same answer.
void BM_DbscanGridIndexThreads(benchmark::State& state) {
  const auto segs = Slice(static_cast<size_t>(state.range(0)));
  const int threads = static_cast<int>(state.range(1));
  const distance::SegmentDistance dist;

  cluster::DbscanOptions serial_opt = Options();
  serial_opt.num_threads = 1;
  cluster::DbscanOptions opt = Options();
  opt.num_threads = threads;

  // Built once, outside the timed region: construction is serial for every
  // thread count (it would Amdahl-cap the scaling signal), and the index is
  // read-only under the parallel batch (per-chunk QueryScratch), so reuse
  // across iterations is safe. BM_DbscanWithGridIndex above still measures
  // the build-inclusive Lemma 3 cost.
  const cluster::GridNeighborhoodIndex index(segs, dist);

  const auto expect = cluster::DbscanSegments(segs, index, serial_opt);
  const auto got = cluster::DbscanSegments(segs, index, opt);
  if (expect.labels != got.labels ||
      expect.clusters.size() != got.clusters.size()) {
    state.SkipWithError("thread count changed the clustering!");
    return;
  }

  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::DbscanSegments(segs, index, opt));
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_DbscanGridIndexThreads)
    ->ArgsProduct({{4096, 16384}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();  // Wall clock, not per-thread CPU: speedup is the point.

// Thread scaling of the partitioning phase (Fig. 8 MDL scans, one per
// trajectory) on the full hurricane database.
void BM_PartitionPhaseThreads(benchmark::State& state) {
  datagen::HurricaneConfig gen;
  gen.num_trajectories = 1200;
  const auto db = datagen::GenerateHurricanes(gen);
  core::TraclusConfig cfg;
  cfg.num_threads = static_cast<int>(state.range(0));
  const core::TraclusEngine engine = *core::TraclusEngine::FromConfig(cfg);

  {
    core::TraclusConfig serial_cfg = cfg;
    serial_cfg.num_threads = 1;
    const core::TraclusEngine serial =
        *core::TraclusEngine::FromConfig(serial_cfg);
    const auto expect = serial.Partition(db);
    const auto got = engine.Partition(db);
    if (!expect.ok() || !got.ok() ||
        expect->characteristic_points != got->characteristic_points) {
      state.SkipWithError("thread count changed the partitioning!");
      return;
    }
  }

  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Partition(db));
  }
  state.counters["threads"] = cfg.num_threads;
}
BENCHMARK(BM_PartitionPhaseThreads)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_NeighborhoodQueryBruteForce(benchmark::State& state) {
  const auto segs = Slice(static_cast<size_t>(state.range(0)));
  const distance::SegmentDistance dist;
  const cluster::BruteForceNeighborhood provider(segs, dist);
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(provider.Neighbors(q % segs.size(), 0.94));
    ++q;
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NeighborhoodQueryBruteForce)
    ->RangeMultiplier(4)
    ->Range(1024, 16384)
    ->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
