// E6 — Fig. 21: the Elk1993 clustering at the optimal parameters.
//
// The paper reports THIRTEEN clusters "in the most of the dense regions", and
// — crucially — NO cluster in the dense-looking upper-right region, because
// the elk crossed it along different paths. Our generator plants 13 shared
// corridors plus a divergent region at (340, 250); shape to verify: cluster
// count of the order of the planted 13, and no representative inside the
// divergent region.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/animal_generator.h"

int main() {
  using namespace traclus;
  bench::PrintHeader(
      "E6 / bench_fig21_clusters_elk",
      "Figure 21 (clustering result, Elk1993, eps=27 MinLns=9)",
      "thirteen clusters in dense regions; none in the dense-but-divergent "
      "upper-right region");

  const auto db = datagen::GenerateAnimals(datagen::Elk1993Config());
  bench::PrintDatabaseStats("Elk1993", db);

  // Visual-inspection optimum around the entropy estimate (EXPERIMENTS.md).
  core::TraclusConfig cfg;
  cfg.eps = 2.94;
  cfg.min_lns = 10;
  const auto result = bench::RunPipeline(cfg, db);
  bench::PrintClusteringSummary(cfg.eps, cfg.min_lns, result);

  // The divergent region check (paper: "the result having no cluster in that
  // region is verified to be correct").
  const geom::Point divergent_center(340, 250);
  int in_divergent = 0;
  std::printf("\nrepresentative trajectories:\n");
  for (size_t i = 0; i < result.representatives.size(); ++i) {
    const auto& rep = result.representatives[i];
    if (rep.size() < 2) continue;
    const auto mid = rep[rep.size() / 2];
    const bool divergent = geom::Distance(mid, divergent_center) < 35.0;
    in_divergent += divergent ? 1 : 0;
    std::printf(
        "  cluster %2zu: (%5.1f, %5.1f) -> (%5.1f, %5.1f), %4zu segments%s\n",
        i, rep.points().front().x(), rep.points().front().y(),
        rep.points().back().x(), rep.points().back().y(),
        result.clustering.clusters[i].size(),
        divergent ? "  [in divergent region!]" : "");
  }

  const auto svg = bench::WriteClusterSvg("fig21_elk1993.svg", db, result);
  std::printf(
      "\nmeasured: %zu clusters (paper: 13; generator plants 13 corridors)\n",
      result.clustering.clusters.size());
  std::printf("measured: %d representative(s) inside the divergent region "
              "(paper: 0)\n", in_divergent);
  std::printf("figure written to %s\n", svg.c_str());
  return 0;
}
