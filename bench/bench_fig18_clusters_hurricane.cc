// E3 — Fig. 18: the hurricane clustering at the optimal parameters.
//
// The paper reports SEVEN clusters: a lower horizontal band of east-to-west
// movements, an upper horizontal band of west-to-east movements, and vertical
// south-to-north connectors — with representative trajectories (thick red
// lines) tracing each common sub-trajectory. Shape to verify: a small number
// of clusters (≈7) whose representatives are horizontal in the lower band
// (westward), horizontal in the upper band (eastward), and vertical between.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/hurricane_generator.h"

namespace {

// Classifies a representative trajectory by its net direction.
const char* DirectionOf(const traclus::traj::Trajectory& rep) {
  if (rep.size() < 2) return "degenerate";
  const auto d = rep.points().back() - rep.points().front();
  if (std::abs(d.x()) >= std::abs(d.y())) {
    return d.x() < 0 ? "east-to-west" : "west-to-east";
  }
  return d.y() > 0 ? "south-to-north" : "north-to-south";
}

}  // namespace

int main() {
  using namespace traclus;
  bench::PrintHeader(
      "E3 / bench_fig18_clusters_hurricane",
      "Figure 18 (clustering result, hurricane data, eps=30 MinLns=6)",
      "seven clusters: lower E->W band, upper W->E band, vertical S->N");

  const auto db = datagen::GenerateHurricanes(datagen::HurricaneConfig{});
  bench::PrintDatabaseStats("hurricane", db);

  // Visual-inspection optimum for the synthetic set (selected, like the paper,
  // by trying values around the entropy estimate; see EXPERIMENTS.md).
  core::TraclusConfig cfg;
  cfg.eps = 0.94;
  cfg.min_lns = 7;
  const auto result = bench::RunPipeline(cfg, db);
  bench::PrintClusteringSummary(cfg.eps, cfg.min_lns, result);

  std::printf("\ncluster directions (paper: E->W, W->E and S->N groups):\n");
  for (size_t i = 0; i < result.representatives.size(); ++i) {
    const auto& rep = result.representatives[i];
    if (rep.size() < 2) continue;
    const auto& f = rep.points().front();
    const auto& b = rep.points().back();
    std::printf(
        "  cluster %zu: %-14s from (%6.1f, %5.1f) to (%6.1f, %5.1f), "
        "%zu segments\n",
        i, DirectionOf(rep), f.x(), f.y(), b.x(), b.y(),
        result.clustering.clusters[i].size());
  }

  const auto svg = bench::WriteClusterSvg("fig18_hurricane.svg", db, result);
  std::printf("\nmeasured: %zu clusters (paper: 7)\n",
              result.clustering.clusters.size());
  std::printf("figure written to %s\n", svg.c_str());
  return 0;
}
