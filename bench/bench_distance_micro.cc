// E17 — microbenchmarks of the distance function (§2.3): the inner loop of
// everything in the grouping phase. Measures the full weighted distance, each
// component, the naive endpoint baselines, and the Euclidean lower bound used
// for index pruning.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "distance/endpoint_distance.h"
#include "distance/segment_distance.h"
#include "traj/segment_store.h"

namespace {

using namespace traclus;

std::vector<geom::Segment> RandomSegments(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<geom::Segment> segs;
  for (size_t i = 0; i < n; ++i) {
    const geom::Point s(rng.Uniform(0, 100), rng.Uniform(0, 100));
    const double ang = rng.Uniform(0, 2 * M_PI);
    const double len = rng.Uniform(0.5, 10);
    segs.emplace_back(s, geom::Point(s.x() + len * std::cos(ang),
                                     s.y() + len * std::sin(ang)),
                      static_cast<geom::SegmentId>(i),
                      static_cast<geom::TrajectoryId>(i));
  }
  return segs;
}

const std::vector<geom::Segment>& Pool() {
  static const auto segs = RandomSegments(1024, 99);
  return segs;
}

const traj::SegmentStore& StorePool() {
  static const traj::SegmentStore store(Pool());
  return store;
}

// The recompute baseline: every pairwise call rederives segment lengths,
// directions, and norms from the endpoints (the pre-SegmentStore hot path).
void BM_FullDistance(benchmark::State& state) {
  const auto& segs = Pool();
  const distance::SegmentDistance dist;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist(segs[i % segs.size()], segs[(i * 31 + 7) % segs.size()]));
    ++i;
  }
}
BENCHMARK(BM_FullDistance);

// The invariant-cached variant: identical results (bit-for-bit; the
// equivalence is asserted in tests/segment_store_test.cc), but lengths,
// squared lengths, and direction vectors come from the SegmentStore and the
// endpoint projections are shared between d⊥ and d∥. The headline ratio
// BM_FullDistance / BM_FullDistanceStoreCached is the per-pair speedup of
// the grouping-phase inner loop; CI uploads this JSON per commit.
void BM_FullDistanceStoreCached(benchmark::State& state) {
  const auto& store = StorePool();
  const distance::SegmentDistance dist;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist(store, i % store.size(), (i * 31 + 7) % store.size()));
    ++i;
  }
}
BENCHMARK(BM_FullDistanceStoreCached);

void BM_DistanceComponentsStoreCached(benchmark::State& state) {
  const auto& store = StorePool();
  const distance::SegmentDistance dist;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist.Components(store, i % store.size(), (i * 31 + 7) % store.size()));
    ++i;
  }
}
BENCHMARK(BM_DistanceComponentsStoreCached);

// One-time cost of freezing a segment vector into the invariant cache — the
// price paid once per pipeline run for the per-pair savings above. The
// pipeline moves the vector in (MdlPartitionStage), so the copy that refills
// it each iteration is excluded from the timed region.
void BM_SegmentStoreBuild(benchmark::State& state) {
  const auto& segs = Pool();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<geom::Segment> input = segs;
    state.ResumeTiming();
    benchmark::DoNotOptimize(traj::SegmentStore(std::move(input)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(segs.size()));
}
BENCHMARK(BM_SegmentStoreBuild);

void BM_DistanceComponents(benchmark::State& state) {
  const auto& segs = Pool();
  const distance::SegmentDistance dist;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.Components(
        segs[i % segs.size()], segs[(i * 31 + 7) % segs.size()]));
    ++i;
  }
}
BENCHMARK(BM_DistanceComponents);

void BM_PerpendicularOnly(benchmark::State& state) {
  const auto& segs = Pool();
  const distance::SegmentDistance dist;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.Perpendicular(
        segs[i % segs.size()], segs[(i * 31 + 7) % segs.size()]));
    ++i;
  }
}
BENCHMARK(BM_PerpendicularOnly);

void BM_AngleOnly(benchmark::State& state) {
  const auto& segs = Pool();
  const distance::SegmentDistance dist;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist.Angle(segs[i % segs.size()], segs[(i * 31 + 7) % segs.size()]));
    ++i;
  }
}
BENCHMARK(BM_AngleOnly);

void BM_EndpointSumBaseline(benchmark::State& state) {
  const auto& segs = Pool();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::EndpointSumDistance(
        segs[i % segs.size()], segs[(i * 31 + 7) % segs.size()]));
    ++i;
  }
}
BENCHMARK(BM_EndpointSumBaseline);

void BM_EuclideanSegmentDistanceLowerBound(benchmark::State& state) {
  const auto& segs = Pool();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::SegmentToSegmentDistance(
        segs[i % segs.size()], segs[(i * 31 + 7) % segs.size()]));
    ++i;
  }
}
BENCHMARK(BM_EuclideanSegmentDistanceLowerBound);

// The batch primitive behind the baselines: all n² distances across a pool.
// Arg = worker threads (1 = serial reference).
void BM_PairwiseDistanceMatrix(benchmark::State& state) {
  const auto& segs = Pool();
  const distance::SegmentDistance dist;
  auto& pool = common::SharedPool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        distance::PairwiseDistanceMatrix(segs, dist, pool));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(segs.size() * segs.size() / 2));
}
BENCHMARK(BM_PairwiseDistanceMatrix)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Store-backed matrix: the same n² distances through the invariant cache.
void BM_PairwiseDistanceMatrixStoreCached(benchmark::State& state) {
  const auto& store = StorePool();
  const distance::SegmentDistance dist;
  auto& pool = common::SharedPool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        distance::PairwiseDistanceMatrix(store, dist, pool));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(store.size() * store.size() / 2));
}
BENCHMARK(BM_PairwiseDistanceMatrixStoreCached)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
