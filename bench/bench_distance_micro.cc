// E17 — microbenchmarks of the distance function (§2.3): the inner loop of
// everything in the grouping phase. Measures the full weighted distance, each
// component, the naive endpoint baselines, and the Euclidean lower bound used
// for index pruning.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/span.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/sieve_stage.h"
#include "datagen/hurricane_generator.h"
#include "distance/batch_kernels.h"
#include "distance/endpoint_distance.h"
#include "distance/segment_distance.h"
#include "traj/segment_store.h"

namespace {

using namespace traclus;

std::vector<geom::Segment> RandomSegments(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<geom::Segment> segs;
  for (size_t i = 0; i < n; ++i) {
    const geom::Point s(rng.Uniform(0, 100), rng.Uniform(0, 100));
    const double ang = rng.Uniform(0, 2 * M_PI);
    const double len = rng.Uniform(0.5, 10);
    segs.emplace_back(s, geom::Point(s.x() + len * std::cos(ang),
                                     s.y() + len * std::sin(ang)),
                      static_cast<geom::SegmentId>(i),
                      static_cast<geom::TrajectoryId>(i));
  }
  return segs;
}

const std::vector<geom::Segment>& Pool() {
  static const auto segs = RandomSegments(1024, 99);
  return segs;
}

const traj::SegmentStore& StorePool() {
  static const traj::SegmentStore store(Pool());
  return store;
}

// The recompute baseline: every pairwise call rederives segment lengths,
// directions, and norms from the endpoints (the pre-SegmentStore hot path).
void BM_FullDistance(benchmark::State& state) {
  const auto& segs = Pool();
  const distance::SegmentDistance dist;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist(segs[i % segs.size()], segs[(i * 31 + 7) % segs.size()]));
    ++i;
  }
}
BENCHMARK(BM_FullDistance);

// The invariant-cached variant: identical results (bit-for-bit; the
// equivalence is asserted in tests/segment_store_test.cc), but lengths,
// squared lengths, and direction vectors come from the SegmentStore and the
// endpoint projections are shared between d⊥ and d∥. The headline ratio
// BM_FullDistance / BM_FullDistanceStoreCached is the per-pair speedup of
// the grouping-phase inner loop; CI uploads this JSON per commit.
void BM_FullDistanceStoreCached(benchmark::State& state) {
  const auto& store = StorePool();
  const distance::SegmentDistance dist;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist(store, i % store.size(), (i * 31 + 7) % store.size()));
    ++i;
  }
}
BENCHMARK(BM_FullDistanceStoreCached);

void BM_DistanceComponentsStoreCached(benchmark::State& state) {
  const auto& store = StorePool();
  const distance::SegmentDistance dist;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist.Components(store, i % store.size(), (i * 31 + 7) % store.size()));
    ++i;
  }
}
BENCHMARK(BM_DistanceComponentsStoreCached);

// One-time cost of freezing a segment vector into the invariant cache — the
// price paid once per pipeline run for the per-pair savings above. The
// pipeline moves the vector in (MdlPartitionStage), so the copy that refills
// it each iteration is excluded from the timed region.
void BM_SegmentStoreBuild(benchmark::State& state) {
  const auto& segs = Pool();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<geom::Segment> input = segs;
    state.ResumeTiming();
    benchmark::DoNotOptimize(traj::SegmentStore(std::move(input)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(segs.size()));
}
BENCHMARK(BM_SegmentStoreBuild);

void BM_DistanceComponents(benchmark::State& state) {
  const auto& segs = Pool();
  const distance::SegmentDistance dist;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.Components(
        segs[i % segs.size()], segs[(i * 31 + 7) % segs.size()]));
    ++i;
  }
}
BENCHMARK(BM_DistanceComponents);

void BM_PerpendicularOnly(benchmark::State& state) {
  const auto& segs = Pool();
  const distance::SegmentDistance dist;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.Perpendicular(
        segs[i % segs.size()], segs[(i * 31 + 7) % segs.size()]));
    ++i;
  }
}
BENCHMARK(BM_PerpendicularOnly);

void BM_AngleOnly(benchmark::State& state) {
  const auto& segs = Pool();
  const distance::SegmentDistance dist;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist.Angle(segs[i % segs.size()], segs[(i * 31 + 7) % segs.size()]));
    ++i;
  }
}
BENCHMARK(BM_AngleOnly);

void BM_EndpointSumBaseline(benchmark::State& state) {
  const auto& segs = Pool();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::EndpointSumDistance(
        segs[i % segs.size()], segs[(i * 31 + 7) % segs.size()]));
    ++i;
  }
}
BENCHMARK(BM_EndpointSumBaseline);

void BM_EuclideanSegmentDistanceLowerBound(benchmark::State& state) {
  const auto& segs = Pool();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::SegmentToSegmentDistance(
        segs[i % segs.size()], segs[(i * 31 + 7) % segs.size()]));
    ++i;
  }
}
BENCHMARK(BM_EuclideanSegmentDistanceLowerBound);

// --- Batched one-vs-many kernels (distance/batch_kernels.h). -------------
// The grouping workload underneath all of these: one query segment against
// the full 1024-segment pool at a typical grouping ε (world 100×100,
// lengths 0.5–10, ε = 5 keeps roughly the densities the §5 experiments
// cluster at). BM_EpsilonRefinePairLoop is the pre-batch per-pair provider
// loop; the headline ratio BM_EpsilonRefinePairLoop / BM_EpsilonRefineBatch
// is the candidate-refine speedup (prune + batching), tracked per commit in
// the CI JSON artifact alongside the cached-vs-recompute pair ratio.

constexpr double kRefineEps = 5.0;

// One full one-vs-all row through the scalar batch kernel.
void BM_DistanceBatchScalar(benchmark::State& state) {
  const auto& store = StorePool();
  const distance::SegmentDistance dist;
  std::vector<double> out(store.size());
  size_t q = 0;
  for (auto _ : state) {
    distance::DistanceBatchRange(
        store, dist, q % store.size(), 0, store.size(),
        common::Span<double>(out.data(), out.size()),
        distance::BatchKernel::kScalar);
    benchmark::DoNotOptimize(out.data());
    ++q;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(store.size()));
}
BENCHMARK(BM_DistanceBatchScalar);

// Same row through the AVX2 lanes (bit-identical results; only throughput
// differs). Skipped — loudly — in binaries built without -mavx2 so the CI
// history distinguishes "not compiled" from "slow".
void BM_DistanceBatchSimd(benchmark::State& state) {
  if (!distance::SimdCompiled()) {
    state.SkipWithError("AVX2 kernels not compiled (build with TRACLUS_AVX2)");
    return;
  }
  const auto& store = StorePool();
  const distance::SegmentDistance dist;
  std::vector<double> out(store.size());
  size_t q = 0;
  for (auto _ : state) {
    distance::DistanceBatchRange(
        store, dist, q % store.size(), 0, store.size(),
        common::Span<double>(out.data(), out.size()),
        distance::BatchKernel::kSimd);
    benchmark::DoNotOptimize(out.data());
    ++q;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(store.size()));
}
BENCHMARK(BM_DistanceBatchSimd);

// The per-pair cached path every ε-query consumer ran before the batch
// layer: full distance for every candidate, then the ≤ ε test.
void BM_EpsilonRefinePairLoop(benchmark::State& state) {
  const auto& store = StorePool();
  const distance::SegmentDistance dist;
  std::vector<size_t> out;
  size_t q = 0;
  for (auto _ : state) {
    const size_t query = q % store.size();
    out.clear();
    for (size_t j = 0; j < store.size(); ++j) {
      if (j == query || dist(store, query, j) <= kRefineEps) out.push_back(j);
    }
    benchmark::DoNotOptimize(out.data());
    ++q;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(store.size()));
}
BENCHMARK(BM_EpsilonRefinePairLoop);

// The batched ε-refine (identical output): midpoint/half-length prune, then
// blocked batch evaluation of the survivors. Arg 0 = scalar, 1 = SIMD.
// Reports the prune rate so the CI history tracks bound quality, not just
// wall time.
void BM_EpsilonRefineBatch(benchmark::State& state) {
  const bool simd = state.range(0) != 0;
  if (simd && !distance::SimdCompiled()) {
    state.SkipWithError("AVX2 kernels not compiled (build with TRACLUS_AVX2)");
    return;
  }
  const auto& store = StorePool();
  const distance::SegmentDistance dist;
  distance::BatchOptions options;
  options.kernel =
      simd ? distance::BatchKernel::kSimd : distance::BatchKernel::kScalar;
  std::vector<size_t> out;
  distance::RefineStats stats;
  size_t q = 0;
  for (auto _ : state) {
    out.clear();
    distance::EpsilonRefineRange(store, dist, q % store.size(), 0,
                                 store.size(), kRefineEps, out, options,
                                 &stats);
    benchmark::DoNotOptimize(out.data());
    ++q;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(store.size()));
  state.counters["prune_rate"] = benchmark::Counter(
      stats.candidates == 0
          ? 0.0
          : static_cast<double>(stats.pruned) /
                static_cast<double>(stats.candidates));
}
BENCHMARK(BM_EpsilonRefineBatch)->Arg(0)->Arg(1);

// The batch primitive behind the baselines: all n² distances across a pool.
// Arg = worker threads (1 = serial reference).
void BM_PairwiseDistanceMatrix(benchmark::State& state) {
  const auto& segs = Pool();
  const distance::SegmentDistance dist;
  auto& pool = common::SharedPool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        distance::PairwiseDistanceMatrix(segs, dist, pool));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(segs.size() * segs.size() / 2));
}
BENCHMARK(BM_PairwiseDistanceMatrix)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Store-backed matrix: the same n² distances through the invariant cache.
void BM_PairwiseDistanceMatrixStoreCached(benchmark::State& state) {
  const auto& store = StorePool();
  const distance::SegmentDistance dist;
  auto& pool = common::SharedPool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        distance::PairwiseDistanceMatrix(store, dist, pool));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(store.size() * store.size() / 2));
}
BENCHMARK(BM_PairwiseDistanceMatrixStoreCached)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --- Tiled vs row-batched matrix fill (many-vs-many tiles). --------------
// RowBatchedPairwiseMatrix reproduces the pre-tile PairwiseDistanceMatrix
// loop — one DistanceBatchRange per row plus a strided full-column mirror —
// as the fixed baseline of the tiled fill. The headline ratio
// BM_PairwiseMatrixRowBatched* / BM_PairwiseMatrixTiled* (same kernel, same
// thread count) is the tile speedup tracked per commit in the CI JSON
// artifact. Entries are bit-identical between the two fills (pinned in
// tests/segment_distance_test.cc), so the ratio is pure throughput.

common::Matrix RowBatchedPairwiseMatrix(const traj::SegmentStore& store,
                                        const distance::SegmentDistance& dist,
                                        common::ThreadPool& pool,
                                        distance::BatchKernel kernel) {
  const size_t n = store.size();
  common::Matrix m(n, n, 0.0);
  pool.ParallelForChunked(0, n, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      if (i + 1 >= n) continue;
      distance::DistanceBatchRange(
          store, dist, i, i + 1, n,
          common::Span<double>(&m(i, i + 1), n - i - 1), kernel);
      for (size_t j = i + 1; j < n; ++j) m(j, i) = m(i, j);
    }
  });
  return m;
}

void BM_PairwiseMatrixRowBatched(benchmark::State& state,
                                 distance::BatchKernel kernel) {
  if (kernel == distance::BatchKernel::kSimd && !distance::SimdCompiled()) {
    state.SkipWithError("AVX2 kernels not compiled (build with TRACLUS_AVX2)");
    return;
  }
  const auto& store = StorePool();
  const distance::SegmentDistance dist;
  auto& pool = common::SharedPool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RowBatchedPairwiseMatrix(store, dist, pool, kernel));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(store.size() * store.size() / 2));
}

void BM_PairwiseMatrixTiled(benchmark::State& state,
                            distance::BatchKernel kernel) {
  if (kernel == distance::BatchKernel::kSimd && !distance::SimdCompiled()) {
    state.SkipWithError("AVX2 kernels not compiled (build with TRACLUS_AVX2)");
    return;
  }
  const auto& store = StorePool();
  const distance::SegmentDistance dist;
  auto& pool = common::SharedPool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        distance::PairwiseDistanceMatrix(store, dist, pool, kernel));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(store.size() * store.size() / 2));
}

void BM_PairwiseMatrixRowBatchedScalar(benchmark::State& state) {
  BM_PairwiseMatrixRowBatched(state, distance::BatchKernel::kScalar);
}
void BM_PairwiseMatrixRowBatchedSimd(benchmark::State& state) {
  BM_PairwiseMatrixRowBatched(state, distance::BatchKernel::kSimd);
}
void BM_PairwiseMatrixTiledScalar(benchmark::State& state) {
  BM_PairwiseMatrixTiled(state, distance::BatchKernel::kScalar);
}
void BM_PairwiseMatrixTiledSimd(benchmark::State& state) {
  BM_PairwiseMatrixTiled(state, distance::BatchKernel::kSimd);
}
BENCHMARK(BM_PairwiseMatrixRowBatchedScalar)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PairwiseMatrixRowBatchedSimd)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PairwiseMatrixTiledScalar)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PairwiseMatrixTiledSimd)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --- Sieve-sampled grouping end to end (core/sieve_stage.h). -------------
// The hurricane data set at the golden parameters (ε = 0.94, MinLns = 5),
// grouped through SieveGroupStage at stride k (Arg). k = 1 is the inner
// DBSCAN backend byte for byte; larger k trades boundary accuracy for the
// O((n/k)²) quadratic-term reduction. Besides wall time the bench reports
// `sieve_quality`: the fraction of sieved-out segments whose sieve label
// maps (majority vote per sieve cluster) onto their full-run cluster — the
// accuracy half of the speed/accuracy trade tracked per commit in the CI
// JSON artifact.

struct SieveFixture {
  traj::SegmentStore store;
  std::shared_ptr<const core::SieveGroupStage> stage;
  cluster::ClusteringResult full;  // The k = 0 (no sieve) reference run.
};

const SieveFixture& SievePool() {
  static const SieveFixture* fixture = [] {
    auto* f = new SieveFixture();
    const traj::TrajectoryDatabase db =
        datagen::GenerateHurricanes(datagen::HurricaneConfig{});
    core::TraclusConfig cfg;
    auto engine = core::TraclusEngine::FromConfig(cfg);
    if (!engine.ok()) std::abort();
    auto partitioned = engine->Partition(db);
    if (!partitioned.ok()) std::abort();
    f->store = std::move(partitioned->store);
    core::DbscanGroupOptions group;
    group.eps = 0.94;
    group.min_lns = 5.0;
    core::SieveGroupOptions sieve;
    sieve.eps = group.eps;
    sieve.distance = group.distance;
    f->stage = std::make_shared<core::SieveGroupStage>(
        std::make_shared<core::DbscanGroupStage>(group), sieve);
    auto full = f->stage->Run(f->store, core::RunContext{});
    if (!full.ok()) std::abort();
    f->full = std::move(full).ValueOrDie();
    return f;
  }();
  return *fixture;
}

// Fraction of sieved-out segments that landed in their full-run cluster,
// under the majority-vote mapping from sieve cluster ids to full-run ids.
double SieveQuality(const SieveFixture& f,
                    const cluster::ClusteringResult& sieved, size_t k) {
  // Recompute the sampled set with the stage's rule (trajectory
  // first-appearance rank, residue class 0 of stride k).
  std::map<geom::TrajectoryId, size_t> rank_of;
  std::vector<char> sampled(f.store.size(), 0);
  for (size_t i = 0; i < f.store.size(); ++i) {
    const auto it =
        rank_of.emplace(f.store.trajectory_id(i), rank_of.size()).first;
    if (it->second % k == 0) sampled[i] = 1;
  }
  // Majority full-run label per sieve cluster.
  std::vector<std::map<int, size_t>> votes(sieved.clusters.size());
  for (size_t i = 0; i < f.store.size(); ++i) {
    if (sieved.labels[i] >= 0) {
      ++votes[static_cast<size_t>(sieved.labels[i])][f.full.labels[i]];
    }
  }
  std::vector<int> mapped(sieved.clusters.size(), cluster::kNoise);
  for (size_t c = 0; c < votes.size(); ++c) {
    size_t best = 0;
    for (const auto& [label, count] : votes[c]) {
      if (count > best) {
        best = count;
        mapped[c] = label;
      }
    }
  }
  size_t sieved_out = 0;
  size_t agree = 0;
  for (size_t i = 0; i < f.store.size(); ++i) {
    if (sampled[i]) continue;
    ++sieved_out;
    const int full_label = f.full.labels[i];
    const int sieve_label = sieved.labels[i];
    const int sieve_mapped =
        sieve_label >= 0 ? mapped[static_cast<size_t>(sieve_label)]
                         : cluster::kNoise;
    if (sieve_mapped == full_label) ++agree;
  }
  return sieved_out == 0 ? 1.0
                         : static_cast<double>(agree) /
                               static_cast<double>(sieved_out);
}

void BM_SieveGroupEndToEnd(benchmark::State& state) {
  const SieveFixture& f = SievePool();
  core::RunContext ctx;
  ctx.sieve = static_cast<size_t>(state.range(0));
  cluster::ClusteringResult last;
  for (auto _ : state) {
    auto result = f.stage->Run(f.store, ctx);
    if (!result.ok()) {
      state.SkipWithError("sieve group run failed");
      return;
    }
    last = std::move(result).ValueOrDie();
    benchmark::DoNotOptimize(last.labels.data());
  }
  state.counters["sieve_quality"] = benchmark::Counter(
      ctx.sieve <= 1 ? 1.0 : SieveQuality(f, last, ctx.sieve));
  state.counters["clusters"] =
      benchmark::Counter(static_cast<double>(last.clusters.size()));
}
BENCHMARK(BM_SieveGroupEndToEnd)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
