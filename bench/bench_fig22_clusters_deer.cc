// E7 — Fig. 22: the Deer1995 clustering at the optimal parameters.
//
// The paper reports exactly TWO clusters in the two most dense regions
// (ε = 29, MinLns = 8), and notes the center region "is not so dense to be
// identified as a cluster". Our generator plants two heavily-used corridors;
// shape to verify: exactly two clusters, one per planted corridor.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/animal_generator.h"

int main() {
  using namespace traclus;
  bench::PrintHeader("E7 / bench_fig22_clusters_deer",
                     "Figure 22 (clustering result, Deer1995, eps=29 MinLns=8)",
                     "exactly two clusters, in the two most dense regions");

  const auto db = datagen::GenerateAnimals(datagen::Deer1995Config());
  bench::PrintDatabaseStats("Deer1995", db);

  core::TraclusConfig cfg;
  cfg.eps = 1.8;  // Visual-inspection optimum near the entropy estimate (1.6).
  cfg.min_lns = 8;
  const auto result = bench::RunPipeline(cfg, db);
  bench::PrintClusteringSummary(cfg.eps, cfg.min_lns, result);

  // The two planted corridors (ground truth of the synthetic substitution).
  const geom::Point corridor_a(115, 87);   // Midpoint of corridor 1.
  const geom::Point corridor_b(285, 192);  // Midpoint of corridor 2.
  std::printf("\nrepresentative trajectories vs planted corridors:\n");
  for (size_t i = 0; i < result.representatives.size(); ++i) {
    const auto& rep = result.representatives[i];
    if (rep.size() < 2) continue;
    const auto mid = rep[rep.size() / 2];
    const double da = geom::Distance(mid, corridor_a);
    const double db_ = geom::Distance(mid, corridor_b);
    std::printf("  cluster %zu: midpoint (%5.1f, %5.1f) — nearest planted "
                "corridor %s (%.1f away)\n",
                i, mid.x(), mid.y(), da < db_ ? "A" : "B", std::min(da, db_));
  }

  const auto svg = bench::WriteClusterSvg("fig22_deer1995.svg", db, result);
  std::printf(
      "\nmeasured: %zu clusters (paper: 2; generator plants 2 corridors)\n",
      result.clustering.clusters.size());
  std::printf("figure written to %s\n", svg.c_str());
  return 0;
}
