// Shard-scaling benchmark for the sharded grouping stage
// (core/sharded_stage.h): grouping wall-clock at S ∈ {1, 2, 4, 8} shards,
// with the halo-merge counters (ghost segments, border pairs/merges,
// dissolved clusters, re-attached segments) reported alongside so the CI
// JSON history pins both the speedup and the merge traffic that buys it.
// S = 1 is the unsharded inner backend byte for byte — the speedup_vs_s1
// counter on the S > 1 rows is measured against its mean iteration time in
// the same process.
//
// Two corpora, deliberately opposite in shape:
//  - dense: the stock hurricane corpus at ε = 0.94. Tracks crisscross the
//    whole bounding box, so the true cross-shard ε-adjacency — hence any
//    sound halo — covers ~50–65% of the store (the fine-raster halo measures
//    within a few points of the exact segment-distance floor). Sharding
//    buys parallelism across cores here, not total-work reduction, and on a
//    one-core runner this row reports a slowdown by design: it is the
//    adversarial bound, kept to pin the halo counters.
//  - mosaic: the same segments with each trajectory translated into one of
//    8 well-separated basins. Halos collapse to ~0 and per-shard problem
//    size to ~n/S. The inner backend's own pruning already handles
//    separated data cheaply, so on one core this row measures the pure
//    decomposition overhead (grid + gather + merge — ~15% of grouping
//    time); this is the regime the decomposition targets (spatial extent
//    far exceeding the ε-neighborhood scale).
//
// Shards execute across the run's worker threads (num_threads = 0 = hardware
// concurrency), so wall-clock speedup tracks min(S, cores) discounted by the
// two effects above: near-linear on mosaic-like data, bounded by the halo
// floor on dense data. The one-core CI runner cannot show a real-time gain;
// the speedup_vs_s1 + overhead/halo counters are the regression signal.
// Uploaded per commit next to bench_distance_micro.json (see
// .github/workflows/ci.yml).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "core/sharded_stage.h"
#include "geom/segment.h"
#include "datagen/hurricane_generator.h"
#include "traj/segment_store.h"
#include "traj/trajectory_database.h"

namespace {

using namespace traclus;

constexpr double kEps = 0.94;
constexpr double kMinLns = 5.0;

const traj::SegmentStore& HurricaneStore() {
  static const traj::SegmentStore* store = [] {
    const traj::TrajectoryDatabase db =
        datagen::GenerateHurricanes(datagen::HurricaneConfig{});
    auto engine = core::TraclusEngine::FromConfig(core::TraclusConfig{});
    if (!engine.ok()) {
      std::fprintf(stderr, "bench_shard_scaling: %s\n",
                   engine.status().ToString().c_str());
      std::abort();
    }
    auto partitioned = engine->Partition(db);
    if (!partitioned.ok()) {
      std::fprintf(stderr, "bench_shard_scaling: %s\n",
                   partitioned.status().ToString().c_str());
      std::abort();
    }
    return new traj::SegmentStore(std::move(partitioned->store));
  }();
  return *store;
}

// The hurricane corpus tiled into 8 well-separated basins: every trajectory
// is translated along x by (tid mod 8) · stride, with stride = bbox width
// plus a margin far exceeding the ε-reach, so basins share no ε-pairs. Same
// segment count, same local geometry — only the global overlap changes.
const traj::SegmentStore& MosaicStore() {
  static const traj::SegmentStore* store = [] {
    const traj::SegmentStore& base = HurricaneStore();
    double lo = base.start_coords(0)[0];
    double hi = lo;
    for (size_t i = 0; i < base.size(); ++i) {
      lo = std::min({lo, base.start_coords(0)[i], base.end_coords(0)[i]});
      hi = std::max({hi, base.start_coords(0)[i], base.end_coords(0)[i]});
    }
    const double stride = (hi - lo) + 50.0;
    std::vector<geom::Segment> tiled;
    tiled.reserve(base.size());
    for (size_t i = 0; i < base.size(); ++i) {
      const geom::Segment s = base.segment(i);
      const double dx =
          static_cast<double>(s.trajectory_id() % 8 < 0
                                  ? s.trajectory_id() % 8 + 8
                                  : s.trajectory_id() % 8) *
          stride;
      geom::Point a = s.start();
      geom::Point b = s.end();
      a[0] += dx;
      b[0] += dx;
      tiled.emplace_back(a, b, s.id(), s.trajectory_id(), s.weight());
    }
    return new traj::SegmentStore(
        traj::SegmentStore::FromSegments(std::move(tiled)));
  }();
  return *store;
}

// Mean seconds per iteration of each corpus's S = 1 row, filled by its own
// run (the rows execute in registration order within one process).
double g_s1_mean_seconds[2] = {0.0, 0.0};

void RunShardedGrouping(benchmark::State& state,
                        const traj::SegmentStore& store, int corpus) {
  const size_t shards = static_cast<size_t>(state.range(0));

  core::DbscanGroupOptions group;
  group.eps = kEps;
  group.min_lns = kMinLns;
  core::ShardedRunStats stats;
  core::ShardedGroupOptions sharded;
  sharded.eps = group.eps;
  sharded.min_lns = group.min_lns;
  sharded.distance = group.distance;
  sharded.stats = &stats;
  const core::ShardedGroupStage stage(
      std::make_shared<core::DbscanGroupStage>(group), sharded);

  core::RunContext ctx;
  ctx.shards = shards;
  ctx.num_threads = 0;  // Hardware concurrency: shards run in parallel.

  size_t clusters = 0;
  size_t noise = 0;
  double total_seconds = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    auto result = stage.Run(store, ctx);
    const auto t1 = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::fprintf(stderr, "bench_shard_scaling: %s\n",
                   result.status().ToString().c_str());
      std::abort();
    }
    total_seconds += std::chrono::duration<double>(t1 - t0).count();
    clusters = result->clusters.size();
    noise = result->num_noise;
    benchmark::DoNotOptimize(result->labels.data());
  }

  const double mean_seconds =
      total_seconds / static_cast<double>(state.iterations());
  if (shards == 1) {
    g_s1_mean_seconds[corpus] = mean_seconds;
  } else if (g_s1_mean_seconds[corpus] > 0.0) {
    state.counters["speedup_vs_s1"] = g_s1_mean_seconds[corpus] / mean_seconds;
  }
  state.counters["clusters"] = static_cast<double>(clusters);
  state.counters["noise"] = static_cast<double>(noise);
  state.counters["ghost_segments"] = static_cast<double>(stats.ghost_segments);
  state.counters["border_pairs"] = static_cast<double>(stats.border_pairs);
  state.counters["border_merges"] = static_cast<double>(stats.border_merges);
  state.counters["dissolved_clusters"] =
      static_cast<double>(stats.dissolved_clusters);
  state.counters["attached_segments"] =
      static_cast<double>(stats.attached_segments);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(store.size()));
}

void BM_ShardedGroupingDense(benchmark::State& state) {
  RunShardedGrouping(state, HurricaneStore(), 0);
}

void BM_ShardedGroupingMosaic(benchmark::State& state) {
  RunShardedGrouping(state, MosaicStore(), 1);
}

BENCHMARK(BM_ShardedGroupingDense)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

BENCHMARK(BM_ShardedGroupingMosaic)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
