// E8 — §5.4 (effects of parameter values), hurricane data.
//
// The paper: "If we use a smaller ε or a larger MinLns compared with the
// optimal ones, our algorithm discovers a larger number of smaller clusters.
// In contrast, if we use a larger ε or a smaller MinLns, [...] a smaller
// number of larger clusters. For example, [...] when ε = 25, nine clusters are
// discovered, and each cluster contains 38 line segments on average; in
// contrast, when ε = 35, three clusters are discovered, and each cluster
// contains 174 line segments on average."
//
// We sweep ε and MinLns around our optimum and verify both monotone trends.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/hurricane_generator.h"
#include "eval/cluster_stats.h"

int main() {
  using namespace traclus;
  bench::PrintHeader(
      "E8 / bench_sec54_param_effects",
      "Section 5.4 (effects of parameter values, hurricane data)",
      "eps=25 -> 9 clusters x 38 segs avg; eps=35 -> 3 clusters x 174 segs avg"
      " (smaller eps / larger MinLns -> more, smaller clusters)");

  const auto db = datagen::GenerateHurricanes(datagen::HurricaneConfig{});
  bench::PrintDatabaseStats("hurricane", db);
  core::TraclusConfig base;
  base.generate_representatives = false;
  const auto store = bench::PartitionOnly(base, db);

  // Our visual optimum is (0.94, 7); sweep eps at fixed MinLns and vice versa.
  const double opt_eps = 0.94;
  const double opt_min_lns = 7;

  std::printf(
      "\n--- eps sweep at MinLns = %.0f (paper: eps 25 -> 30 -> 35) ---\n",
      opt_min_lns);
  size_t prev_clusters = 0;
  bool first = true;
  for (const double mult : {0.8, 1.0, 1.2}) {
    core::TraclusConfig cfg = base;
    cfg.eps = opt_eps * mult;
    cfg.min_lns = opt_min_lns;
    const auto clustering = bench::GroupOnly(cfg, store);
    bench::PrintClusteringSummary(cfg.eps, cfg.min_lns, store.segments(),
                                  clustering);
    const auto st = eval::SummarizeClustering(store.segments(), clustering);
    if (!first && st.num_clusters > 0 && prev_clusters > 0) {
      std::printf("    trend: clusters %zu -> %zu (%s as eps grows)\n",
                  prev_clusters, st.num_clusters,
                  st.num_clusters <= prev_clusters ? "fewer/equal, as the paper"
                                                   : "MORE — counter to paper");
    }
    prev_clusters = st.num_clusters;
    first = false;
  }

  std::printf("\n--- MinLns sweep at eps = %.2f ---\n", opt_eps);
  first = true;
  prev_clusters = 0;
  for (const double min_lns : {5.0, 7.0, 9.0}) {
    core::TraclusConfig cfg = base;
    cfg.eps = opt_eps;
    cfg.min_lns = min_lns;
    const auto clustering = bench::GroupOnly(cfg, store);
    bench::PrintClusteringSummary(cfg.eps, cfg.min_lns, store.segments(),
                                  clustering);
    prev_clusters =
        eval::SummarizeClustering(store.segments(), clustering).num_clusters;
    (void)first;
    first = false;
  }
  std::printf("\nexpectation: avg segments/cluster grows with eps and shrinks "
              "with MinLns (paper: 38 -> 174 as eps goes 25 -> 35)\n");
  return 0;
}
