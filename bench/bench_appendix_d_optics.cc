// E15 — Appendix D: why DBSCAN rather than OPTICS for line segments.
//
// The paper (Fig. 25): within an ε-neighborhood of POINTS, pairwise distances
// are bounded by 2ε; for LINE SEGMENTS they are not, so reachability-distances
// of cluster members stay high (close to ε) and clusters blur into noise on a
// reachability plot. We measure both claims: (a) the max pairwise distance
// inside ε-neighborhoods, for points vs segments; (b) the reachability-
// distance distribution of cluster members relative to ε, for both geometries.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/neighborhood.h"
#include "cluster/optics_segments.h"
#include "common/rng.h"
#include "datagen/hurricane_generator.h"

int main() {
  using namespace traclus;
  using geom::Point;
  using geom::Segment;
  bench::PrintHeader(
      "E15 / bench_appendix_d_optics",
      "Appendix D (Figure 25: eps-neighborhood pairwise distances; OPTICS)",
      "points: pairwise distance <= 2*eps; segments: unbounded, so "
      "reachability stays near eps and clusters are less separable");

  common::Rng rng(7);
  const double eps = 2.0;

  // (a) Points, modeled as zero-length segments: the 2ε bound holds.
  std::vector<Segment> points;
  for (int i = 0; i < 300; ++i) {
    const Point p(rng.Uniform(0, 30), rng.Uniform(0, 30));
    points.emplace_back(p, p, i, i);
  }
  // Segments: a dense mix of short and long segments (the Fig. 25(b) regime).
  std::vector<Segment> segments;
  for (int i = 0; i < 300; ++i) {
    const Point s(rng.Uniform(0, 30), rng.Uniform(0, 30));
    const double len = rng.Bernoulli(0.3) ? rng.Uniform(20, 60)
                                          : rng.Uniform(0.2, 2.0);
    const double ang = rng.Uniform(0, 2 * M_PI);
    segments.emplace_back(
        s, Point(s.x() + len * std::cos(ang), s.y() + len * std::sin(ang)), i,
        i);
  }

  const distance::SegmentDistance dist;
  auto max_intra_neighborhood = [&](std::vector<Segment> objs) {
    const traj::SegmentStore store(std::move(objs));
    const cluster::BruteForceNeighborhood provider(store, dist);
    double worst = 0.0;
    for (size_t i = 0; i < store.size(); ++i) {
      const auto n = provider.Neighbors(i, eps);
      for (size_t a = 0; a < n.size(); ++a) {
        for (size_t b = a + 1; b < n.size(); ++b) {
          worst = std::max(worst, dist(store, n[a], n[b]));
        }
      }
    }
    return worst;
  };

  const double worst_points = max_intra_neighborhood(points);
  const double worst_segments = max_intra_neighborhood(segments);
  std::printf("eps = %.1f\n", eps);
  std::printf("max pairwise distance within an eps-neighborhood:\n");
  std::printf("  points   : %6.2f  (2*eps = %.1f bound %s)\n", worst_points,
              2 * eps, worst_points <= 2 * eps + 1e-9 ? "HOLDS" : "VIOLATED");
  std::printf("  segments : %6.2f  (2*eps = %.1f bound %s)\n\n", worst_segments,
              2 * eps, worst_segments <= 2 * eps + 1e-9 ? "holds" : "EXCEEDED, "
              "as Appendix D argues");

  // (b) Reachability on a real-ish workload: hurricane partitions.
  datagen::HurricaneConfig gen;
  gen.num_trajectories = 120;
  const auto db = datagen::GenerateHurricanes(gen);
  core::TraclusConfig cfg;
  const auto hsegs = bench::PartitionOnly(cfg, db);
  const cluster::BruteForceNeighborhood provider(hsegs, dist);
  cluster::OpticsOptions oopt;
  oopt.eps = 1.5;
  oopt.min_lns = 5;
  const auto optics = cluster::OpticsSegments(hsegs, dist, provider, oopt);

  std::vector<double> finite;
  for (const double r : optics.reachability) {
    if (r != cluster::kUndefinedReachability) finite.push_back(r);
  }
  std::sort(finite.begin(), finite.end());
  auto pct = [&](double q) {
    return finite[static_cast<size_t>(q * (finite.size() - 1))];
  };
  std::printf(
      "OPTICS reachability over %zu hurricane partitions (eps = %.1f):\n",
      hsegs.size(), oopt.eps);
  std::printf("  reachable segments: %zu; median %.3f, p90 %.3f, p99 %.3f "
              "(fractions of eps: %.2f / %.2f / %.2f)\n",
              finite.size(), pct(0.5), pct(0.9), pct(0.99), pct(0.5) / oopt.eps,
              pct(0.9) / oopt.eps, pct(0.99) / oopt.eps);
  std::printf("\npaper shape: segment reachability concentrates near eps "
              "(high p50/eps ratio), making cluster valleys shallow — the "
              "reason TRACLUS uses DBSCAN.\n");
  return 0;
}
