// E11 — Lemma 1: the approximate partitioning algorithm is O(n) in the number
// of trajectory points (exactly n − 1 MDL evaluations). google-benchmark
// sweeps the trajectory length and fits the asymptotic complexity; the
// exact-DP partitioner is included for contrast (O(n²) edges, O(n³) work).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "partition/approximate_partitioner.h"
#include "partition/optimal_partitioner.h"

namespace {

using namespace traclus;

traj::Trajectory RandomTrack(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  traj::Trajectory tr(0);
  geom::Point p(0, 0);
  for (size_t i = 0; i < n; ++i) {
    p = geom::Point(p.x() + rng.Uniform(2, 12), p.y() + rng.Uniform(-8, 8));
    tr.Add(p);
  }
  return tr;
}

void BM_ApproximatePartitioning(benchmark::State& state) {
  const auto tr = RandomTrack(static_cast<size_t>(state.range(0)), 42);
  const partition::ApproximatePartitioner part;
  for (auto _ : state) {
    benchmark::DoNotOptimize(part.CharacteristicPoints(tr));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ApproximatePartitioning)
    ->RangeMultiplier(2)
    ->Range(256, 8192)
    ->Complexity(benchmark::oN);

void BM_OptimalPartitioning(benchmark::State& state) {
  const auto tr = RandomTrack(static_cast<size_t>(state.range(0)), 42);
  const partition::OptimalPartitioner part;
  for (auto _ : state) {
    benchmark::DoNotOptimize(part.CharacteristicPoints(tr));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OptimalPartitioning)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
