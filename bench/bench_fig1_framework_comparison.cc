// E16 — Fig. 1 / Example 1: the headline framework comparison.
//
// Five trajectories share a common sub-trajectory and then "move to totally
// different directions". The paper's claim: clustering trajectories AS A WHOLE
// (Gaffney-Smyth regression mixtures, or any whole-trajectory distance) cannot
// discover the common behavior; the partition-and-group framework can.
//
// We run three systems on the same data:
//   1. TRACLUS                       -> must output 1 cluster = the corridor.
//   2. Regression-mixture EM [7,8]   -> whole-trajectory components only.
//   3. k-medoids over DTW distances  -> whole-trajectory groups only.

#include <cstdio>

#include "baseline/kmedoids.h"
#include "baseline/regression_mixture.h"
#include "baseline/warping_distances.h"
#include "bench/bench_util.h"
#include "datagen/common_subtrajectory.h"

int main() {
  using namespace traclus;
  bench::PrintHeader(
      "E16 / bench_fig1_framework_comparison",
      "Figure 1 / Example 1 (common sub-trajectory discovery)",
      "whole-trajectory clustering misses the common sub-trajectory; the "
      "partition-and-group framework discovers it");

  const auto db =
      datagen::GenerateCommonSubTrajectory(
          datagen::CommonSubTrajectoryConfig{});
  bench::PrintDatabaseStats("fig1", db);

  // --- 1. TRACLUS. ---
  core::TraclusConfig cfg;
  cfg.eps = 10.0;
  cfg.min_lns = 3;
  const auto result = bench::RunPipeline(cfg, db);
  std::printf("\n[TRACLUS] %zu cluster(s)\n",
              result.clustering.clusters.size());
  for (size_t i = 0; i < result.representatives.size(); ++i) {
    const auto& rep = result.representatives[i];
    if (rep.size() < 2) continue;
    std::printf(
        "  representative %zu: (%.1f, %.1f) -> (%.1f, %.1f) — the common "
        "sub-trajectory (|PTR| = %zu of 5 trajectories)\n",
        i, rep.points().front().x(), rep.points().front().y(),
        rep.points().back().x(), rep.points().back().y(),
        cluster::TrajectoryCardinality(result.store,
                                       result.clustering.clusters[i]));
  }
  const auto svg = bench::WriteClusterSvg("fig1_traclus.svg", db, result);
  std::printf("  figure written to %s\n", svg.c_str());

  // --- 2. Regression mixture (whole-trajectory model-based clustering). ---
  baseline::RegressionMixtureConfig rm;
  rm.num_components = 2;
  rm.poly_order = 2;
  const auto fit = baseline::RegressionMixtureClusterer(rm).Fit(db);
  std::printf("\n[Gaffney-Smyth regression mixture, K=2] assignments: ");
  for (const int a : fit.assignments) std::printf("%d ", a);
  std::printf("\n  every trajectory is assigned WHOLE to one component — no "
              "output object isolates the shared corridor.\n");

  // --- 3. DTW + k-medoids (whole-trajectory distance clustering). ---
  baseline::KMedoidsConfig km;
  km.k = 2;
  const auto med = baseline::KMedoids(
      db.size(),
      [&](size_t i, size_t j) { return baseline::DtwDistance(db[i], db[j]); },
      km);
  std::printf("\n[DTW + k-medoids, k=2] assignments: ");
  for (const int a : med.assignments) std::printf("%d ", a);
  std::printf("\n  groups are whole trajectories with large internal DTW "
              "distances (the shared prefix cannot outweigh the divergent "
              "branches):\n");
  for (size_t i = 0; i < db.size(); ++i) {
    for (size_t j = i + 1; j < db.size(); ++j) {
      std::printf("  DTW(TR%zu, TR%zu) = %8.1f%s\n", i + 1, j + 1,
                  baseline::DtwDistance(db[i], db[j]),
                  med.assignments[i] == med.assignments[j]
                      ? "  [same whole-trajectory group]"
                      : "");
    }
  }

  std::printf("\nmeasured: TRACLUS found %zu corridor cluster(s) covering all "
              "5 trajectories; both whole-trajectory baselines produced only "
              "whole-trajectory groups (paper's Example 1).\n",
              result.clustering.clusters.size());
  return 0;
}
