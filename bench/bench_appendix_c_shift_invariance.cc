// E14 — Appendix C: L(H) on segment lengths makes partitioning shift-invariant.
//
// The paper's example: TR1 = (100,100)->(200,200)->(300,100) and TR2 =
// (200,200)->(300,300)->(400,200); TR3/TR4 are the same shifted by
// (10000, 10000). "In principle, the clustering result of TR1 and TR2 should
// be the same as that of TR3 and TR4" — which holds for the length-based L(H)
// but would fail for an endpoint-coordinate encoding, whose cost we also show.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "partition/approximate_partitioner.h"
#include "partition/mdl.h"

namespace {

// The strawman L(H) of Appendix C: encode the two endpoints' coordinate values
// (bits grow with the coordinate magnitude, hence shift-variant).
double EndpointLH(const traclus::traj::Trajectory& tr, size_t i, size_t j) {
  double bits = 0.0;
  for (const size_t idx : {i, j}) {
    for (int d = 0; d < tr[idx].dims(); ++d) {
      bits += std::log2(std::max(std::abs(tr[idx][d]), 1.0));
    }
  }
  return bits;
}

}  // namespace

int main() {
  using namespace traclus;
  using geom::Point;
  bench::PrintHeader("E14 / bench_appendix_c_shift_invariance",
                     "Appendix C (shift invariance of the length-based L(H))",
                     "TR3/TR4 (= TR1/TR2 + 10000) must partition identically; "
                     "endpoint-based L(H) would differ");

  auto make = [](std::vector<Point> pts, double shift) {
    traj::Trajectory tr(0);
    // Densify the paper's 3-point sketch so partitioning has real decisions.
    for (size_t i = 1; i < pts.size(); ++i) {
      for (int k = 0; k < 10; ++k) {
        const double u = k / 10.0;
        const Point p = pts[i - 1] + (pts[i] - pts[i - 1]) * u;
        tr.Add(Point(p.x() + shift, p.y() + shift));
      }
    }
    tr.Add(Point(pts.back().x() + shift, pts.back().y() + shift));
    return tr;
  };

  const std::vector<Point> tr1_pts = {Point(100, 100), Point(200, 200),
                                      Point(300, 100)};
  const std::vector<Point> tr2_pts = {Point(200, 200), Point(300, 300),
                                      Point(400, 200)};
  const partition::ApproximatePartitioner part;

  bool all_match = true;
  int idx = 1;
  for (const auto& pts : {tr1_pts, tr2_pts}) {
    const auto base = make(pts, 0.0);
    const auto shifted = make(pts, 10000.0);
    const auto cp_base = part.CharacteristicPoints(base);
    const auto cp_shift = part.CharacteristicPoints(shifted);
    const bool match = cp_base == cp_shift;
    all_match &= match;
    std::printf("TR%d vs TR%d+10000: %zu vs %zu characteristic points -> %s\n",
                idx, idx, cp_base.size(), cp_shift.size(),
                match ? "IDENTICAL (shift-invariant)" : "DIFFER");

    // The strawman: endpoint-coordinate L(H) grows with the shift.
    const partition::MdlCostModel model;
    std::printf(
        "  length-based  L(H) over full span: %8.2f bits vs %8.2f bits\n",
        model.LH(base, 0, base.size() - 1),
        model.LH(shifted, 0, shifted.size() - 1));
    std::printf(
        "  endpoint-based L(H) over full span: %8.2f bits vs %8.2f bits "
        "(shift-VARIANT, the Appendix C failure)\n",
        EndpointLH(base, 0, base.size() - 1),
        EndpointLH(shifted, 0, shifted.size() - 1));
    ++idx;
  }
  std::printf("\nmeasured: partitioning shift-invariant for all trajectories: "
              "%s (paper: must be invariant)\n",
              all_match ? "YES" : "NO");
  return 0;
}
