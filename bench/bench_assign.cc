// Benchmarks for the serving-path additions: the persistent neighbor cache
// (cluster/neighbor_cache_file.h) and the frozen snapshot's assignment API
// (core/snapshot.h).
//
// Two questions, answered on the golden hurricane corpus (ε = 0.94,
// MinLns = 5 — the configuration tests/golden/hurricane.golden pins):
//
//   * Cache leverage (ms): the grouping stage end-to-end, cold (fresh cache
//     directory per iteration — compute + write) vs warm (pre-populated
//     directory — pure load+serve) vs uncached. The ≥3× warm-vs-cold claim
//     in README.md is this pair.
//   * Assignment throughput (segments/s and trajectories/s): snapshot
//     AssignSegments over the full corpus store at 1 and 4 threads, and
//     AssignTrajectory one trajectory at a time — the QPS figure of the
//     serving path. items_per_second lands in the CI bench JSON history.
//
// Uploaded per commit next to bench_ingest.json (.github/workflows/ci.yml).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/span.h"
#include "core/engine.h"
#include "core/snapshot.h"
#include "datagen/hurricane_generator.h"
#include "traj/segment_store.h"
#include "traj/trajectory_database.h"

namespace {

using namespace traclus;

constexpr double kEps = 0.94;
constexpr double kMinLns = 5.0;

core::TraclusConfig HurricaneConfig() {
  core::TraclusConfig cfg;
  cfg.eps = kEps;
  cfg.min_lns = kMinLns;
  return cfg;
}

const traj::TrajectoryDatabase& Hurricanes() {
  static const auto* db = new traj::TrajectoryDatabase(
      datagen::GenerateHurricanes(datagen::HurricaneConfig{}));
  return *db;
}

// One engine per cache mode; the run context carries the directory.
core::TraclusResult RunWithCacheDir(const std::string& dir) {
  auto engine = bench::MakeEngine(HurricaneConfig());
  core::RunContext ctx;
  ctx.neighbor_cache_dir = dir;
  auto result = engine.Run(Hurricanes(), ctx);
  if (!result.ok()) {
    std::fprintf(stderr, "bench cached run failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).ValueOrDie();
}

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("bench_assign_" + name))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Baseline: the full pipeline with no cache directory configured.
void BM_GroupUncached(benchmark::State& state) {
  for (auto _ : state) {
    auto result = bench::RunPipeline(HurricaneConfig(), Hurricanes());
    benchmark::DoNotOptimize(result.clustering.labels.data());
  }
}
BENCHMARK(BM_GroupUncached)->Unit(benchmark::kMillisecond);

// Cold: every iteration starts from an empty directory, so the run pays the
// full neighborhood computation plus the file write.
void BM_GroupCacheCold(benchmark::State& state) {
  const std::string dir = FreshDir("cold");
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    state.ResumeTiming();
    auto result = RunWithCacheDir(dir);
    benchmark::DoNotOptimize(result.clustering.labels.data());
  }
}
BENCHMARK(BM_GroupCacheCold)->Unit(benchmark::kMillisecond);

// Warm: the directory is populated once up front; every timed iteration
// serves the neighborhood lists from the file. warm ≥ 3× faster than cold
// end-to-end is the acceptance bar this bench tracks.
void BM_GroupCacheWarm(benchmark::State& state) {
  const std::string dir = FreshDir("warm");
  RunWithCacheDir(dir);  // Populate.
  for (auto _ : state) {
    auto result = RunWithCacheDir(dir);
    benchmark::DoNotOptimize(result.clustering.labels.data());
  }
}
BENCHMARK(BM_GroupCacheWarm)->Unit(benchmark::kMillisecond);

// The frozen snapshot, built once from the golden run.
const core::ClusterSnapshot& Snapshot() {
  static const core::ClusterSnapshot* snapshot = [] {
    auto result = bench::RunPipeline(HurricaneConfig(), Hurricanes());
    core::SnapshotParams params;
    params.eps = kEps;
    auto built = core::ClusterSnapshot::FromResult(result, params);
    if (!built.ok()) {
      std::fprintf(stderr, "bench snapshot build failed: %s\n",
                   built.status().ToString().c_str());
      std::abort();
    }
    return std::move(built).ValueOrDie().release();
  }();
  return *snapshot;
}

// Bulk segment assignment over the whole corpus store; items_per_second is
// segments/s. Arg = thread count.
void BM_AssignSegments(benchmark::State& state) {
  const core::ClusterSnapshot& snapshot = Snapshot();
  const traj::SegmentStore& queries = snapshot.store();
  core::AssignOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  std::vector<int> labels(queries.size());
  std::vector<double> distance(queries.size());
  for (auto _ : state) {
    const auto st =
        snapshot.AssignSegments(queries, common::Span<int>(labels),
                                common::Span<double>(distance), options);
    if (!st.ok()) {
      std::fprintf(stderr, "bench assign failed: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_AssignSegments)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// One trajectory per op — partition + assign + vote; items_per_second is
// trajectories/s, the serving path's QPS figure.
void BM_AssignTrajectory(benchmark::State& state) {
  const core::ClusterSnapshot& snapshot = Snapshot();
  const auto& trajectories = Hurricanes().trajectories();
  size_t next = 0;
  for (auto _ : state) {
    const auto assignment =
        snapshot.AssignTrajectory(trajectories[next]);
    if (!assignment.ok()) {
      std::fprintf(stderr, "bench trajectory assign failed: %s\n",
                   assignment.status().ToString().c_str());
      std::abort();
    }
    benchmark::DoNotOptimize(assignment->cluster);
    next = (next + 1) % trajectories.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AssignTrajectory);

}  // namespace

BENCHMARK_MAIN();
