// E4 — Fig. 19: entropy vs ε for the Elk1993 data.
//
// The paper finds the entropy minimum at ε = 25 with avg|Nε(L)| = 7.63 and
// uses (ε = 27, MinLns = 9) after visual inspection. Shape to verify: interior
// entropy minimum; MinLns range derived from avg|Nε| at the minimum.

#include <cstdio>
#include <fstream>

#include "bench/bench_util.h"
#include "datagen/animal_generator.h"
#include "params/parameter_heuristic.h"

int main() {
  using namespace traclus;
  bench::PrintHeader("E4 / bench_fig19_entropy_elk",
                     "Figure 19 (entropy vs eps, Elk1993)",
                     "minimum at eps = 25, avg|N(L)| = 7.63, optimal eps = 27");

  const auto db = datagen::GenerateAnimals(datagen::Elk1993Config());
  bench::PrintDatabaseStats("Elk1993", db);

  core::TraclusConfig cfg;
  const auto segments = bench::PartitionOnly(cfg, db);
  std::printf("partitioning phase: %zu trajectory partitions\n\n",
              segments.size());

  const distance::SegmentDistance dist;
  params::HeuristicOptions opt;
  opt.eps_lo = 0.25;
  opt.eps_hi = 15.0;
  opt.grid_points = 60;
  const auto est = params::EstimateParameters(segments, dist, opt);

  const std::string csv_path = bench::OutDir() + "/fig19_entropy_elk.csv";
  std::ofstream csv(csv_path);
  csv << "eps,entropy\n";
  std::printf("%-8s %s\n", "eps", "entropy");
  for (size_t g = 0; g < est.grid_eps.size(); ++g) {
    std::printf("%-8.3f %.4f%s\n", est.grid_eps[g], est.grid_entropy[g],
                est.grid_eps[g] == est.eps ? "   <-- minimum" : "");
    csv << est.grid_eps[g] << "," << est.grid_entropy[g] << "\n";
  }
  std::printf("\nmeasured: entropy minimum at eps = %.3f (entropy %.4f)\n",
              est.eps, est.entropy);
  std::printf("measured: avg|N(L)| = %.2f  ->  MinLns range %.0f..%.0f\n",
              est.avg_neighborhood_size, est.min_lns_low, est.min_lns_high);
  std::printf("series written to %s\n", csv_path.c_str());
  return 0;
}
