#ifndef TRACLUS_BENCH_BENCH_UTIL_H_
#define TRACLUS_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure-reproduction benches. Each bench binary prints
// the series/rows of one paper artifact (see DESIGN.md §3) and, where the
// paper's figure is a map plot, writes an SVG into bench_out/.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "cluster/representative.h"
#include "core/engine.h"
#include "eval/cluster_stats.h"
#include "traj/svg_writer.h"
#include "traj/trajectory_database.h"

namespace traclus::bench {

/// Builds a TraclusEngine from a legacy-shaped config, dying loudly on
/// misconfiguration — benches hardcode their configs, so a rejection is a
/// bench bug, not a runtime condition to handle.
inline core::TraclusEngine MakeEngine(const core::TraclusConfig& config) {
  auto engine = core::TraclusEngine::FromConfig(config);
  if (!engine.ok()) {
    std::fprintf(stderr, "bench engine config rejected: %s\n",
                 engine.status().ToString().c_str());
    std::abort();
  }
  return std::move(engine).ValueOrDie();
}

/// Full pipeline run (Fig. 4) on the engine API.
inline core::TraclusResult RunPipeline(const core::TraclusConfig& config,
                                       const traj::TrajectoryDatabase& db) {
  auto result = MakeEngine(config).Run(db);
  if (!result.ok()) {
    std::fprintf(stderr, "bench pipeline run failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).ValueOrDie();
}

/// Partitioning stage only (Fig. 4 lines 01-03): returns the frozen segment
/// store, the currency the later stages consume.
inline traj::SegmentStore PartitionOnly(const core::TraclusConfig& config,
                                        const traj::TrajectoryDatabase& db) {
  auto partitioned = MakeEngine(config).Partition(db);
  if (!partitioned.ok()) {
    std::fprintf(stderr, "bench partition stage failed: %s\n",
                 partitioned.status().ToString().c_str());
    std::abort();
  }
  return std::move(partitioned->store);
}

/// Grouping stage only (Fig. 4 line 04) on a prebuilt segment store.
inline cluster::ClusteringResult GroupOnly(const core::TraclusConfig& config,
                                           const traj::SegmentStore& store) {
  auto grouped = MakeEngine(config).Group(store);
  if (!grouped.ok()) {
    std::fprintf(stderr, "bench group stage failed: %s\n",
                 grouped.status().ToString().c_str());
    std::abort();
  }
  return std::move(grouped).ValueOrDie();
}

/// Directory for bench artifacts (SVG plots, CSV series). Created on demand;
/// falls back to the current directory on failure.
inline std::string OutDir() {
  const char* dir = "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return ec ? std::string(".") : std::string(dir);
}

/// Prints the standard bench header naming the paper artifact reproduced.
inline void PrintHeader(const char* experiment_id, const char* paper_artifact,
                        const char* paper_result) {
  std::printf("============================================================\n");
  std::printf("%s — reproduces %s\n", experiment_id, paper_artifact);
  std::printf("paper reports: %s\n", paper_result);
  std::printf("============================================================\n");
}

/// Prints database shape (the paper quotes these in §5.1).
inline void PrintDatabaseStats(const char* name,
                               const traj::TrajectoryDatabase& db) {
  const auto st = db.Stats();
  std::printf(
      "data set %-12s: %zu trajectories, %zu points (mean length %.1f)\n",
      name, st.num_trajectories, st.num_points, st.mean_length);
}

/// Renders a clustering result in the style of Figs. 18/21/22/23: trajectories
/// thin green, representative trajectories thick red. Returns the output path.
inline std::string WriteClusterSvg(const std::string& filename,
                                   const traj::TrajectoryDatabase& db,
                                   const core::TraclusResult& result) {
  const auto st = db.Stats();
  traj::SvgWriter svg(st.bounds);
  svg.AddDatabase(db, "#2e8b57", 0.5);
  for (const auto& rep : result.representatives) {
    svg.AddTrajectory(rep, "#cc0000", 3.0);
  }
  const std::string path = OutDir() + "/" + filename;
  const auto status = svg.Save(path);
  if (!status.ok()) {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  }
  return path;
}

/// Prints a one-line clustering summary (the quantities §5.2-§5.4 quote).
inline void PrintClusteringSummary(
    double eps, double min_lns, const std::vector<geom::Segment>& segments,
    const cluster::ClusteringResult& clustering) {
  const auto stats = eval::SummarizeClustering(segments, clustering);
  std::printf(
      "eps=%-6.2f MinLns=%-3.0f -> %2zu clusters | avg %6.1f segs/cluster | "
      "%5zu noise segs | avg |PTR| %.1f\n",
      eps, min_lns, stats.num_clusters, stats.avg_segments_per_cluster,
      stats.num_noise, stats.avg_trajectory_cardinality);
}

inline void PrintClusteringSummary(double eps, double min_lns,
                                   const core::TraclusResult& result) {
  PrintClusteringSummary(eps, min_lns, result.segments(), result.clustering);
}

}  // namespace traclus::bench

#endif  // TRACLUS_BENCH_BENCH_UTIL_H_
