// E1 — Fig. 16: entropy vs ε for the hurricane data.
//
// The paper sweeps ε = 1..60 (lat/long degrees) and finds the entropy minimum
// at ε = 31 with avg|Nε(L)| = 4.39, which its heuristic turns into the
// MinLns range 5..7. Our synthetic hurricane world uses the same degree-like
// frame but tighter corridors, so the minimum lands at a smaller ε; the SHAPE
// to verify is: entropy is maximal at both sweep ends and dips at cluster
// scale, and avg|Nε| at the minimum implies a single-digit MinLns range.

#include <cstdio>
#include <fstream>

#include "bench/bench_util.h"
#include "datagen/hurricane_generator.h"
#include "params/parameter_heuristic.h"

int main() {
  using namespace traclus;
  bench::PrintHeader("E1 / bench_fig16_entropy_hurricane",
                     "Figure 16 (entropy vs eps, hurricane data)",
                     "minimum at eps = 31, avg|N(L)| = 4.39, MinLns in 5..7");

  const auto db = datagen::GenerateHurricanes(datagen::HurricaneConfig{});
  bench::PrintDatabaseStats("hurricane", db);

  core::TraclusConfig cfg;
  const auto segments = bench::PartitionOnly(cfg, db);
  std::printf("partitioning phase: %zu trajectory partitions\n\n",
              segments.size());

  const distance::SegmentDistance dist;
  params::HeuristicOptions opt;
  opt.eps_lo = 0.1;
  opt.eps_hi = 6.0;  // Our world's corridors are ~1-2 units wide.
  opt.grid_points = 60;
  const auto est = params::EstimateParameters(segments, dist, opt);

  std::printf("%-8s %s\n", "eps", "entropy");
  const std::string csv_path = bench::OutDir() + "/fig16_entropy_hurricane.csv";
  std::ofstream csv(csv_path);
  csv << "eps,entropy\n";
  for (size_t g = 0; g < est.grid_eps.size(); ++g) {
    std::printf("%-8.3f %.4f%s\n", est.grid_eps[g], est.grid_entropy[g],
                est.grid_eps[g] == est.eps ? "   <-- minimum" : "");
    csv << est.grid_eps[g] << "," << est.grid_entropy[g] << "\n";
  }

  std::printf("\nmeasured: entropy minimum at eps = %.3f (entropy %.4f)\n",
              est.eps, est.entropy);
  std::printf("measured: avg|N(L)| at minimum = %.2f  ->  MinLns range "
              "%.0f..%.0f\n",
              est.avg_neighborhood_size, est.min_lns_low, est.min_lns_high);
  std::printf("series written to %s\n", csv_path.c_str());
  return 0;
}
