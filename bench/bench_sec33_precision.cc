// E10 — §3.3: precision of the approximate partitioning algorithm.
//
// The paper: "the precision of this algorithm is quite high. Our experience
// indicates that the precision is about 80% on average, which means that 80%
// of the approximate solutions appear also in the exact solutions."
//
// We measure |approx ∩ exact| / |approx| over the synthetic hurricane tracks
// (and corridor traversals) against the exact DP optimum, for both MDL
// encoders. Shape to verify: precision well above chance, in the vicinity of
// the paper's 80%.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/hurricane_generator.h"
#include "eval/precision.h"
#include "partition/approximate_partitioner.h"
#include "partition/optimal_partitioner.h"

int main() {
  using namespace traclus;
  bench::PrintHeader("E10 / bench_sec33_precision",
                     "Section 3.3 (precision of approximate partitioning)",
                     "approximate solutions ~80% contained in exact solutions");

  datagen::HurricaneConfig gen;
  gen.num_trajectories = 150;  // The exact DP is O(n^2) edges; sample tracks.
  const auto db = datagen::GenerateHurricanes(gen);
  bench::PrintDatabaseStats("hurricane-sample", db);

  for (const auto encoding : {partition::MdlEncoding::kLog2Clamped,
                              partition::MdlEncoding::kLog2Plus1}) {
    partition::MdlOptions opt;
    opt.encoding = encoding;
    const partition::ApproximatePartitioner approx(opt);
    const partition::OptimalPartitioner optimal(opt);

    double precision_sum = 0.0;
    double recall_sum = 0.0;
    double cost_ratio_sum = 0.0;
    size_t counted = 0;
    for (const auto& tr : db.trajectories()) {
      if (tr.size() < 5) continue;
      const auto a = approx.CharacteristicPoints(tr);
      const auto e = optimal.CharacteristicPoints(tr);
      precision_sum += eval::CharacteristicPointPrecision(a, e);
      recall_sum += eval::CharacteristicPointRecall(a, e);
      cost_ratio_sum += optimal.TotalCost(tr, a) / optimal.TotalCost(tr, e);
      ++counted;
    }
    std::printf(
        "encoder %-13s: precision %.1f%% (paper: ~80%%) | recall %.1f%% | "
        "approx/optimal MDL cost ratio %.3f | %zu trajectories\n",
        encoding == partition::MdlEncoding::kLog2Clamped ? "log2-clamped"
                                                         : "log2(1+x)",
        100.0 * precision_sum / counted, 100.0 * recall_sum / counted,
        cost_ratio_sum / counted, counted);
  }
  return 0;
}
