// E5 — Fig. 20: QMeasure vs ε for MinLns ∈ {8, 9, 10} on Elk1993.
//
// The paper sweeps ε = 25..31 and observes the measure "becomes nearly minimal
// when the optimal parameter values are used", with a stronger correlation to
// actual quality than on the hurricane data. Same shape check as E2 on the
// longer-trajectory data set.

#include <cstdio>
#include <fstream>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/animal_generator.h"
#include "eval/qmeasure.h"
#include "params/parameter_heuristic.h"

int main() {
  using namespace traclus;
  bench::PrintHeader("E5 / bench_fig20_qmeasure_elk",
                     "Figure 20 (QMeasure vs eps, MinLns = 8/9/10, Elk1993)",
                     "nearly minimal at the optimal (eps=27, MinLns=9)");

  const auto db = datagen::GenerateAnimals(datagen::Elk1993Config());
  bench::PrintDatabaseStats("Elk1993", db);

  core::TraclusConfig base;
  const auto store = bench::PartitionOnly(base, db);

  const distance::SegmentDistance dist;
  params::HeuristicOptions hopt;
  hopt.eps_lo = 0.25;
  hopt.eps_hi = 15.0;
  hopt.grid_points = 60;
  const auto est = params::EstimateParameters(store, dist, hopt);
  std::printf("estimated eps* = %.3f (paper: 25)\n\n", est.eps);

  std::vector<double> eps_grid;
  for (int k = -3; k <= 3; ++k) eps_grid.push_back(est.eps * (1.0 + 0.1 * k));

  const std::string csv_path = bench::OutDir() + "/fig20_qmeasure_elk.csv";
  std::ofstream csv(csv_path);
  csv << "eps,min_lns,qmeasure,clusters\n";
  std::printf("%-8s %-8s %-14s %s\n", "eps", "MinLns", "QMeasure", "clusters");
  for (const double min_lns : {8.0, 9.0, 10.0}) {
    double best_q = 0.0;
    double best_eps = 0.0;
    bool first = true;
    for (const double eps : eps_grid) {
      core::TraclusConfig cfg;
      cfg.eps = eps;
      cfg.min_lns = min_lns;
      cfg.generate_representatives = false;
      const auto clustering = bench::GroupOnly(cfg, store);
      const auto q =
          eval::ComputeQMeasure(store.segments(), clustering, dist);
      std::printf("%-8.3f %-8.0f %-14.1f %zu\n", eps, min_lns, q.qmeasure,
                  clustering.clusters.size());
      csv << eps << "," << min_lns << "," << q.qmeasure << ","
          << clustering.clusters.size() << "\n";
      if (first || q.qmeasure < best_q) {
        best_q = q.qmeasure;
        best_eps = eps;
        first = false;
      }
    }
    std::printf("  -> MinLns=%.0f: QMeasure minimal at eps=%.3f\n\n", min_lns,
                best_eps);
  }
  std::printf("series written to %s\n", csv_path.c_str());
  return 0;
}
